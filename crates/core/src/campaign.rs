//! Measurement campaigns against the hidden scheduler.
//!
//! A campaign replays the global scheduler over a span of 15-second slots
//! for the study's terminals and records, per slot and terminal, the
//! *available* satellites and the *chosen* one — the exact data §5 and §6
//! of the paper are built on.
//!
//! Two observation modes mirror what the paper could and could not see:
//!
//! * **Oracle** — the chosen satellite is read straight from the hidden
//!   scheduler (the reproduction's privilege; the fast path for large
//!   campaigns).
//! * **Identified** — the chosen satellite is recovered through the §4
//!   obstruction-map pipeline (XOR → DTW), complete with its occasional
//!   misidentifications and skipped slots. This is what the authors
//!   actually had, so experiments that quote the paper's numbers run in
//!   this mode.

use crate::vantage;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, VisibleSat};
use starsense_ident::{identify_slot, DishSimulator, SlotCapture};
use starsense_scheduler::slots::{slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy, Terminal};

/// A satellite as observed during one slot from one terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct SatObs {
    /// Catalog number.
    pub norad_id: u32,
    /// Angle of elevation, degrees.
    pub elevation_deg: f64,
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Days since launch.
    pub age_days: f64,
    /// Sunlit status.
    pub sunlit: bool,
    /// Launch year (for §5.2 binning).
    pub launch_year: i32,
    /// Launch month.
    pub launch_month: u32,
}

impl From<&VisibleSat> for SatObs {
    fn from(v: &VisibleSat) -> SatObs {
        SatObs {
            norad_id: v.norad_id,
            elevation_deg: v.look.elevation_deg,
            azimuth_deg: v.look.azimuth_deg,
            age_days: v.age_days,
            sunlit: v.sunlit,
            launch_year: v.launch.year,
            launch_month: v.launch.month,
        }
    }
}

/// One slot's observation from one terminal.
#[derive(Debug, Clone)]
pub struct SlotObservation {
    /// Terminal id (index into [`vantage::paper_terminals`]-style lists).
    pub terminal_id: usize,
    /// Global slot index.
    pub slot: i64,
    /// Slot start.
    pub slot_start: JulianDate,
    /// Local mean solar hour at the terminal (the §6 `local_hour` feature).
    pub local_hour: f64,
    /// Satellites above the minimum elevation.
    pub available: Vec<SatObs>,
    /// The satellite believed to serve this slot (mode-dependent).
    pub chosen: Option<SatObs>,
    /// Ground truth (always the scheduler's real pick; equals `chosen` in
    /// oracle mode).
    pub truth_id: Option<u32>,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The hidden scheduler's policy.
    pub policy: SchedulerPolicy,
    /// Observe through the §4 identification pipeline instead of reading
    /// the scheduler directly.
    pub identified: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { policy: SchedulerPolicy::default(), identified: false }
    }
}

/// A runnable campaign.
pub struct Campaign<'a> {
    constellation: &'a Constellation,
    terminals: Vec<Terminal>,
    config: CampaignConfig,
    seed: u64,
}

impl<'a> Campaign<'a> {
    /// Oracle-mode campaign.
    pub fn oracle(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: false, ..config },
            seed,
        }
    }

    /// Identified-mode campaign (through the obstruction-map pipeline).
    pub fn identified(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: true, ..config },
            seed,
        }
    }

    /// The terminals under measurement.
    pub fn terminals(&self) -> &[Terminal] {
        &self.terminals
    }

    /// Runs `slots` consecutive slots starting at the slot containing
    /// `from`. Returns observations slot-major, terminal-minor.
    pub fn run(&self, from: JulianDate, slots: usize) -> Vec<SlotObservation> {
        let mut scheduler =
            GlobalScheduler::new(self.config.policy.clone(), self.terminals.clone(), self.seed);
        let mut dishes: Vec<DishSimulator> =
            self.terminals.iter().map(|t| DishSimulator::new(t.location)).collect();
        let mut prev_caps: Vec<Option<SlotCapture>> = vec![None; self.terminals.len()];

        let mut out = Vec::with_capacity(slots * self.terminals.len());
        // Query each slot at its midpoint: slot boundaries are derived from
        // the instant, and a midpoint query can never fall on the wrong
        // side of a boundary through float rounding.
        let first_mid = slot_start(from).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
        for k in 0..slots {
            let at = first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
            let allocs = scheduler.allocate(self.constellation, at);
            for alloc in &allocs {
                let tid = alloc.terminal_id;
                let truth_id = alloc.chosen_id();

                let chosen: Option<SatObs> = if self.config.identified {
                    let capture = dishes[tid].play_slot(
                        self.constellation,
                        alloc.slot,
                        alloc.slot_start,
                        truth_id,
                    );
                    let usable_prev =
                        if capture.after_reset { None } else { prev_caps[tid].as_ref() };
                    let identified = usable_prev.and_then(|prev| {
                        identify_slot(
                            &prev.map,
                            &capture.map,
                            self.constellation,
                            self.terminals[tid].location,
                            alloc.slot_start,
                        )
                    });
                    prev_caps[tid] = Some(capture);
                    identified.and_then(|id| {
                        // Report the identified satellite's observed state,
                        // taken from the available list (all satellites in
                        // view, so a correct match is always present).
                        alloc.available.iter().find(|v| v.norad_id == id.norad_id).map(SatObs::from)
                    })
                } else {
                    alloc.chosen.as_ref().map(SatObs::from)
                };

                out.push(SlotObservation {
                    terminal_id: tid,
                    slot: alloc.slot,
                    slot_start: alloc.slot_start,
                    local_hour: alloc
                        .slot_start
                        .local_solar_hour(self.terminals[tid].location.lon_deg),
                    available: alloc.available.iter().map(SatObs::from).collect(),
                    chosen,
                    truth_id,
                });
            }
        }
        out
    }
}

/// Convenience: observations of one terminal only.
pub fn for_terminal(obs: &[SlotObservation], terminal_id: usize) -> Vec<&SlotObservation> {
    obs.iter().filter(|o| o.terminal_id == terminal_id).collect()
}

/// Convenience: the standard four-terminal oracle campaign of the paper.
pub fn paper_campaign(constellation: &Constellation, seed: u64) -> Campaign<'_> {
    Campaign::oracle(constellation, vantage::paper_terminals(), CampaignConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;

    fn small_run(identified: bool) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let config = CampaignConfig::default();
        let campaign = if identified {
            Campaign::identified(&c, terminals, config, 33)
        } else {
            Campaign::oracle(&c, terminals, config, 33)
        };
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
    }

    #[test]
    fn oracle_campaign_records_every_slot() {
        let obs = small_run(false);
        assert_eq!(obs.len(), 25);
        for o in &obs {
            assert!(!o.available.is_empty());
            assert_eq!(o.chosen.as_ref().map(|c| c.norad_id), o.truth_id);
            assert!((0.0..24.0).contains(&o.local_hour));
        }
        // Slots are consecutive.
        for w in obs.windows(2) {
            assert_eq!(w[1].slot, w[0].slot + 1);
        }
    }

    #[test]
    fn oracle_chosen_is_among_available() {
        let obs = small_run(false);
        for o in &obs {
            if let Some(ch) = &o.chosen {
                assert!(o.available.iter().any(|a| a.norad_id == ch.norad_id));
            }
        }
    }

    #[test]
    fn identified_campaign_mostly_matches_truth() {
        let obs = small_run(true);
        let attempted: Vec<&SlotObservation> =
            obs.iter().filter(|o| o.chosen.is_some() && o.truth_id.is_some()).collect();
        assert!(attempted.len() >= 15, "attempted {}", attempted.len());
        let correct = attempted
            .iter()
            .filter(|o| o.chosen.as_ref().map(|c| c.norad_id) == o.truth_id)
            .count();
        assert!(
            correct * 10 >= attempted.len() * 8,
            "identified accuracy {correct}/{}",
            attempted.len()
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_run(false);
        let b = small_run(false);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.truth_id, y.truth_id);
        }
    }

    #[test]
    fn for_terminal_filters() {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let campaign = paper_campaign(&c, 7);
        let obs = campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 3);
        assert_eq!(obs.len(), 12);
        assert_eq!(for_terminal(&obs, 2).len(), 3);
        assert!(for_terminal(&obs, 2).iter().all(|o| o.terminal_id == 2));
    }
}
