//! The §5 characterization analyses.
//!
//! Each function consumes campaign observations and produces the data
//! behind one figure of the paper: chosen-vs-available comparisons of
//! angle of elevation (Figure 4), azimuth (Figure 5), launch date
//! (Figure 6), and sunlit status (Figure 7 / §5.3's headline numbers).

use crate::campaign::SlotObservation;
use starsense_astro::angles::Quadrant;
use starsense_stats::{median, pearson, Ecdf};
use std::collections::BTreeMap;

fn per_terminal<'a>(
    obs: &'a [SlotObservation],
    terminal_id: usize,
) -> impl Iterator<Item = &'a SlotObservation> {
    obs.iter().filter(move |o| o.terminal_id == terminal_id)
}

/// Figure 4: angle-of-elevation preference.
#[derive(Debug, Clone)]
pub struct AoeAnalysis {
    /// Terminal the analysis covers.
    pub terminal_id: usize,
    /// ECDF of available satellites' AOE.
    pub available_ecdf: Ecdf,
    /// ECDF of chosen satellites' AOE.
    pub chosen_ecdf: Ecdf,
    /// Median available AOE, degrees.
    pub available_median_deg: f64,
    /// Median chosen AOE, degrees.
    pub chosen_median_deg: f64,
    /// Chosen-minus-available median shift, degrees (paper: ≈ +22.9°).
    pub median_shift_deg: f64,
    /// Share of available satellites in the 45–90° band (paper: ≈ 30%).
    pub available_high_band: f64,
    /// Share of chosen satellites in the 45–90° band (paper: ≈ 80%).
    pub chosen_high_band: f64,
}

/// Runs the Figure 4 analysis for one terminal.
pub fn aoe_analysis(obs: &[SlotObservation], terminal_id: usize) -> AoeAnalysis {
    let mut available = Vec::new();
    let mut chosen = Vec::new();
    for o in per_terminal(obs, terminal_id) {
        available.extend(o.available.iter().map(|s| s.elevation_deg));
        if let Some(c) = &o.chosen {
            chosen.push(c.elevation_deg);
        }
    }
    let available_ecdf = Ecdf::new(&available);
    let chosen_ecdf = Ecdf::new(&chosen);
    let available_median_deg = median(&available);
    let chosen_median_deg = median(&chosen);
    AoeAnalysis {
        terminal_id,
        available_high_band: available_ecdf.mass_in(45.0, 90.1),
        chosen_high_band: chosen_ecdf.mass_in(45.0, 90.1),
        available_ecdf,
        chosen_ecdf,
        available_median_deg,
        chosen_median_deg,
        median_shift_deg: chosen_median_deg - available_median_deg,
    }
}

/// Figure 5: azimuth preference.
#[derive(Debug, Clone)]
pub struct AzimuthAnalysis {
    /// Terminal the analysis covers.
    pub terminal_id: usize,
    /// ECDF of available satellites' azimuth.
    pub available_ecdf: Ecdf,
    /// ECDF of chosen satellites' azimuth.
    pub chosen_ecdf: Ecdf,
    /// Share of available satellites per quadrant (NE/SE/SW/NW order).
    pub available_quadrants: [f64; 4],
    /// Share of chosen satellites per quadrant.
    pub chosen_quadrants: [f64; 4],
    /// Share of available satellites in the two northern quadrants
    /// (paper average: ≈ 58%).
    pub available_north: f64,
    /// Share of chosen satellites in the two northern quadrants
    /// (paper average: ≈ 82% away from obstructions).
    pub chosen_north: f64,
    /// Share of chosen satellites specifically in the north-west quadrant
    /// (the Ithaca-tree diagnostic: ≈ 9.7% there vs ≈ 55.4% elsewhere).
    pub chosen_northwest: f64,
}

/// Runs the Figure 5 analysis for one terminal.
pub fn azimuth_analysis(obs: &[SlotObservation], terminal_id: usize) -> AzimuthAnalysis {
    let mut available = Vec::new();
    let mut chosen = Vec::new();
    for o in per_terminal(obs, terminal_id) {
        available.extend(o.available.iter().map(|s| s.azimuth_deg));
        if let Some(c) = &o.chosen {
            chosen.push(c.azimuth_deg);
        }
    }

    let shares = |xs: &[f64]| -> [f64; 4] {
        let mut counts = [0usize; 4];
        for &az in xs {
            let q = Quadrant::of_azimuth_deg(az);
            counts[q.index()] += 1;
        }
        let total = xs.len().max(1) as f64;
        [
            counts[0] as f64 / total,
            counts[1] as f64 / total,
            counts[2] as f64 / total,
            counts[3] as f64 / total,
        ]
    };

    let available_quadrants = shares(&available);
    let chosen_quadrants = shares(&chosen);
    AzimuthAnalysis {
        terminal_id,
        available_ecdf: Ecdf::new(&available),
        chosen_ecdf: Ecdf::new(&chosen),
        available_north: available_quadrants[0] + available_quadrants[3],
        chosen_north: chosen_quadrants[0] + chosen_quadrants[3],
        chosen_northwest: chosen_quadrants[3],
        available_quadrants,
        chosen_quadrants,
    }
}

/// One launch-month bin of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchBin {
    /// `"YYYY-MM"` label (the figure's x-axis).
    pub label: String,
    /// Months since 2020-01, the regression x value.
    pub month_index: f64,
    /// Slot-satellite pairs where a satellite of this launch was available.
    pub available: usize,
    /// Slots where a satellite of this launch was picked.
    pub picked: usize,
    /// picked / available (the figure's y value).
    pub ratio: f64,
}

/// Figure 6: launch-date preference.
#[derive(Debug, Clone)]
pub struct LaunchAnalysis {
    /// Terminal the analysis covers.
    pub terminal_id: usize,
    /// Per-launch-month bins, chronological.
    pub bins: Vec<LaunchBin>,
    /// Pearson correlation of `ratio` against launch date
    /// (paper average over unobstructed locations: ≈ 0.41).
    pub pearson: Option<f64>,
}

/// Runs the Figure 6 analysis for one terminal.
pub fn launch_analysis(obs: &[SlotObservation], terminal_id: usize) -> LaunchAnalysis {
    // (year, month) → (available, picked) counts.
    let mut bins: BTreeMap<(i32, u32), (usize, usize)> = BTreeMap::new();
    for o in per_terminal(obs, terminal_id) {
        for a in &o.available {
            bins.entry((a.launch_year, a.launch_month)).or_default().0 += 1;
        }
        if let Some(c) = &o.chosen {
            bins.entry((c.launch_year, c.launch_month)).or_default().1 += 1;
        }
    }

    let bins: Vec<LaunchBin> = bins
        .into_iter()
        .filter(|(_, (avail, _))| *avail > 0)
        .map(|((y, m), (avail, picked))| LaunchBin {
            label: format!("{y:04}-{m:02}"),
            month_index: (y - 2020) as f64 * 12.0 + (m - 1) as f64,
            available: avail,
            picked,
            ratio: picked as f64 / avail as f64,
        })
        .collect();

    let xs: Vec<f64> = bins.iter().map(|b| b.month_index).collect();
    let ys: Vec<f64> = bins.iter().map(|b| b.ratio).collect();
    LaunchAnalysis { terminal_id, pearson: pearson(&xs, &ys), bins }
}

/// §5.3 and Figure 7: sunlit preference.
#[derive(Debug, Clone)]
pub struct SunlitAnalysis {
    /// Terminal the analysis covers.
    pub terminal_id: usize,
    /// Slots with at least one sunlit and one dark satellite available.
    pub mixed_slots: usize,
    /// Share of mixed slots whose pick was sunlit (paper: ≈ 72.3%).
    pub sunlit_pick_share: f64,
    /// Among mixed slots where a *dark* satellite was picked, the minimum
    /// dark/available share observed (paper: dark picked only when that
    /// share ≥ 35%).
    pub min_dark_share_when_dark_picked: Option<f64>,
    /// ECDF of AOE for dark chosen satellites.
    pub dark_chosen_aoe: Ecdf,
    /// ECDF of AOE for sunlit chosen satellites.
    pub sunlit_chosen_aoe: Ecdf,
    /// ECDF of AOE for dark available satellites.
    pub dark_available_aoe: Ecdf,
    /// ECDF of AOE for sunlit available satellites.
    pub sunlit_available_aoe: Ecdf,
    /// Share of dark picks above 60° AOE (paper: ≈ 82%).
    pub dark_chosen_above_60: f64,
    /// Share of sunlit picks above 60° AOE (paper: ≈ 54%).
    pub sunlit_chosen_above_60: f64,
    /// Number of dark picks (sample size behind the dark statistics).
    pub n_dark_chosen: usize,
    /// Number of sunlit picks.
    pub n_sunlit_chosen: usize,
}

/// Runs the §5.3 / Figure 7 analysis for one terminal.
pub fn sunlit_analysis(obs: &[SlotObservation], terminal_id: usize) -> SunlitAnalysis {
    let mut mixed_slots = 0usize;
    let mut sunlit_picks = 0usize;
    let mut dark_picks = 0usize;
    let mut min_dark_share: Option<f64> = None;

    let mut dark_chosen = Vec::new();
    let mut sunlit_chosen = Vec::new();
    let mut dark_avail = Vec::new();
    let mut sunlit_avail = Vec::new();

    for o in per_terminal(obs, terminal_id) {
        let n_dark = o.available.iter().filter(|s| !s.sunlit).count();
        let n_sunlit = o.available.len() - n_dark;
        for a in &o.available {
            if a.sunlit {
                sunlit_avail.push(a.elevation_deg);
            } else {
                dark_avail.push(a.elevation_deg);
            }
        }
        let Some(c) = &o.chosen else { continue };
        if c.sunlit {
            sunlit_chosen.push(c.elevation_deg);
        } else {
            dark_chosen.push(c.elevation_deg);
        }

        if n_dark > 0 && n_sunlit > 0 {
            mixed_slots += 1;
            if c.sunlit {
                sunlit_picks += 1;
            } else {
                dark_picks += 1;
                let share = n_dark as f64 / o.available.len() as f64;
                min_dark_share = Some(min_dark_share.map_or(share, |m: f64| m.min(share)));
            }
        }
    }

    let picks = (sunlit_picks + dark_picks).max(1) as f64;
    let above = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().filter(|&&e| e > 60.0).count() as f64 / xs.len() as f64
        }
    };

    SunlitAnalysis {
        terminal_id,
        mixed_slots,
        sunlit_pick_share: sunlit_picks as f64 / picks,
        min_dark_share_when_dark_picked: min_dark_share,
        dark_chosen_above_60: above(&dark_chosen),
        sunlit_chosen_above_60: above(&sunlit_chosen),
        n_dark_chosen: dark_chosen.len(),
        n_sunlit_chosen: sunlit_chosen.len(),
        dark_chosen_aoe: Ecdf::new(&dark_chosen),
        sunlit_chosen_aoe: Ecdf::new(&sunlit_chosen),
        dark_available_aoe: Ecdf::new(&dark_avail),
        sunlit_available_aoe: Ecdf::new(&sunlit_avail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::vantage::{paper_terminals, IOWA, ITHACA};
    use starsense_astro::time::JulianDate;
    use starsense_constellation::ConstellationBuilder;

    /// A moderately sized oracle campaign shared by the tests (built once).
    fn observations() -> &'static [SlotObservation] {
        use std::sync::OnceLock;
        static OBS: OnceLock<Vec<SlotObservation>> = OnceLock::new();
        OBS.get_or_init(|| {
            let c = Box::leak(Box::new(ConstellationBuilder::starlink_gen1().seed(41).build()));
            let campaign = Campaign::oracle(c, paper_terminals(), CampaignConfig::default(), 41);
            // 2h of slots covering deep night for the US sites so both
            // sunlit and dark satellites appear in numbers.
            campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 6, 0, 0.0), 480)
        })
    }

    #[test]
    fn aoe_chosen_dominates_available() {
        let a = aoe_analysis(observations(), IOWA);
        assert!(
            a.median_shift_deg > 10.0,
            "median shift {:.1} (chosen {:.1} vs available {:.1})",
            a.median_shift_deg,
            a.chosen_median_deg,
            a.available_median_deg
        );
        assert!(
            a.chosen_high_band > a.available_high_band + 0.2,
            "high-band: chosen {:.2} vs available {:.2}",
            a.chosen_high_band,
            a.available_high_band
        );
        // CDF of chosen sits to the right of available at mid-elevations.
        assert!(a.chosen_ecdf.eval(50.0) < a.available_ecdf.eval(50.0));
    }

    #[test]
    fn azimuth_skews_north_at_unobstructed_sites() {
        let a = azimuth_analysis(observations(), IOWA);
        assert!(
            a.chosen_north > a.available_north + 0.1,
            "north share: chosen {:.2} vs available {:.2}",
            a.chosen_north,
            a.available_north
        );
        let total: f64 = a.chosen_quadrants.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ithaca_trees_suppress_northwest_picks() {
        let ithaca = azimuth_analysis(observations(), ITHACA);
        let iowa = azimuth_analysis(observations(), IOWA);
        assert!(
            ithaca.chosen_northwest < iowa.chosen_northwest * 0.6,
            "Ithaca NW {:.3} vs Iowa NW {:.3}",
            ithaca.chosen_northwest,
            iowa.chosen_northwest
        );
    }

    #[test]
    fn launch_preference_is_positive() {
        let a = launch_analysis(observations(), IOWA);
        assert!(a.bins.len() > 10, "{} bins", a.bins.len());
        let r = a.pearson.expect("enough bins for correlation");
        assert!(r > 0.1, "Pearson {r:.3} should be positive");
        // Bins are chronological and ratios are sane.
        for w in a.bins.windows(2) {
            assert!(w[1].month_index > w[0].month_index);
        }
        for b in &a.bins {
            assert!((0.0..=1.0).contains(&b.ratio));
        }
    }

    #[test]
    fn sunlit_is_preferred_in_mixed_slots() {
        let a = sunlit_analysis(observations(), IOWA);
        if a.mixed_slots >= 20 {
            assert!(
                a.sunlit_pick_share > 0.5,
                "sunlit share {:.2} over {} mixed slots",
                a.sunlit_pick_share,
                a.mixed_slots
            );
        }
    }

    #[test]
    fn dark_picks_sit_higher_than_sunlit_picks() {
        // Evaluate the §5.3 AOE split wherever the dark-pick sample is big
        // enough to be meaningful (the measurement window doesn't put every
        // terminal in darkness).
        let mut evaluated = 0;
        for tid in 0..4 {
            let a = sunlit_analysis(observations(), tid);
            if a.n_dark_chosen >= 20 && a.n_sunlit_chosen >= 20 {
                evaluated += 1;
                assert!(
                    a.dark_chosen_above_60 > a.sunlit_chosen_above_60,
                    "terminal {tid}: dark>60° {:.2} (n={}) vs sunlit>60° {:.2} (n={})",
                    a.dark_chosen_above_60,
                    a.n_dark_chosen,
                    a.sunlit_chosen_above_60,
                    a.n_sunlit_chosen
                );
            }
        }
        assert!(evaluated >= 1, "no terminal had enough dark picks to evaluate");
    }
}
