//! Graceful degradation: what a campaign knows when it does *not* know
//! the serving satellite.
//!
//! The paper's pipeline silently skipped slots it could not identify.
//! Under fault injection that is no longer acceptable: a chaos campaign
//! needs to distinguish "the scheduler served nobody" from "the frame
//! fetch failed" from "the match was too close to call". Every
//! [`SlotObservation`](crate::campaign::SlotObservation) therefore
//! carries a [`SlotOutcome`], and [`DegradationStats`] aggregates them
//! into the health metrics the chaos harness asserts on.

/// Why a slot produced no identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The scheduler allocated no satellite to the terminal this slot.
    Outage,
    /// Every obstruction-frame fetch attempt failed, retries included.
    FrameDropped {
        /// Fetch attempts made before giving up.
        attempts: u32,
    },
    /// The fetched frame predated this slot's trail (a late gRPC reply
    /// serving the previous map state), so differencing found nothing.
    StaleFrame,
    /// The frame was captured right after a map reset: there is no
    /// previous map it can be differenced against.
    AfterReset,
    /// No usable previous capture — the campaign just started, or the
    /// previous slot's frame was dropped.
    MissingBaseline,
    /// The XOR of consecutive frames left no trail.
    EmptyTrail,
    /// The isolated trail was too short to be a trajectory.
    TinyTrail,
    /// No published-TLE candidate was in view.
    NoCandidates,
    /// The pipeline named a satellite that is not in the slot's
    /// available list (a confident misidentification).
    UnmatchedIdentity,
    /// The slot's work unit (a scheduling shard or an observation
    /// terminal) was quarantined after exhausting its retry budget in the
    /// resumable engine; the slot was never computed.
    WorkerFailed,
}

/// How one slot's observation resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlotOutcome {
    /// The serving satellite was established. In identified mode
    /// `confidence` is the DTW margin of the winning match (in `[0, 1]`);
    /// in oracle mode it is `1.0` — the scheduler was read directly.
    Observed {
        /// Margin of the winning match, or `1.0` for oracle reads.
        confidence: f64,
    },
    /// A best match exists but fell below the campaign's margin
    /// threshold; reporting it as fact would be a guess.
    Ambiguous {
        /// The sub-threshold best margin.
        margin: f64,
    },
    /// No identification at all, with the cause.
    NoData(DegradeReason),
    /// Outcome information is absent — observations imported from CSV or
    /// produced before the taxonomy existed.
    Unrecorded,
}

impl SlotOutcome {
    /// Whether the slot produced a usable identification.
    pub fn is_observed(&self) -> bool {
        matches!(self, SlotOutcome::Observed { .. })
    }

    /// Whether the slot degraded (ambiguous or no data). `Unrecorded`
    /// outcomes are neither observed nor degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, SlotOutcome::Ambiguous { .. } | SlotOutcome::NoData(_))
    }
}

/// Aggregate degradation over a run (or several merged runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Slot observations counted.
    pub slots: usize,
    /// Slots with a usable identification.
    pub observed: usize,
    /// Slots whose best match fell below the margin threshold.
    pub ambiguous: usize,
    /// Slots with no identification at all.
    pub no_data: usize,
    /// `no_data` slots caused by exhausted frame fetches.
    pub frame_dropped: usize,
    /// `no_data` slots caused by stale frames.
    pub stale_frames: usize,
    /// `no_data` slots where the scheduler served nobody.
    pub outages: usize,
    /// Satellites quarantined for repeated propagation failures.
    pub quarantined_sats: usize,
    /// (satellite, slot) propagation entries masked by fault injection,
    /// quarantine tails included.
    pub masked_propagations: usize,
    /// `no_data` slots lost to quarantined work units.
    pub worker_failed: usize,
    /// Worker attempts retried by the resumable engine's supervisor
    /// (counts re-runs, not first attempts).
    pub worker_retries: usize,
    /// Work units quarantined after exhausting their retry budget.
    pub quarantined_workers: usize,
}

impl DegradationStats {
    /// Tallies the outcomes of an observation stream. The propagation
    /// counters stay zero — they come from the campaign's fault
    /// schedule, not from the observations.
    pub fn collect(observations: &[crate::campaign::SlotObservation]) -> DegradationStats {
        let mut stats = DegradationStats { slots: observations.len(), ..Default::default() };
        for obs in observations {
            match obs.outcome {
                SlotOutcome::Observed { .. } => stats.observed += 1,
                SlotOutcome::Ambiguous { .. } => stats.ambiguous += 1,
                SlotOutcome::NoData(reason) => {
                    stats.no_data += 1;
                    match reason {
                        DegradeReason::FrameDropped { .. } => stats.frame_dropped += 1,
                        DegradeReason::StaleFrame => stats.stale_frames += 1,
                        DegradeReason::Outage => stats.outages += 1,
                        DegradeReason::WorkerFailed => stats.worker_failed += 1,
                        _ => {}
                    }
                }
                SlotOutcome::Unrecorded => {}
            }
        }
        stats
    }

    /// Fraction of slots with a usable identification (`1.0` when empty).
    pub fn observed_rate(&self) -> f64 {
        if self.slots == 0 {
            return 1.0;
        }
        self.observed as f64 / self.slots as f64
    }

    /// Fraction of slots that degraded (`0.0` when empty).
    pub fn degraded_rate(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        (self.ambiguous + self.no_data) as f64 / self.slots as f64
    }

    /// Accumulates another run's counters into this one (for seed-sweep
    /// aggregation in the chaos harness).
    pub fn merge(&mut self, other: &DegradationStats) {
        self.slots += other.slots;
        self.observed += other.observed;
        self.ambiguous += other.ambiguous;
        self.no_data += other.no_data;
        self.frame_dropped += other.frame_dropped;
        self.stale_frames += other.stale_frames;
        self.outages += other.outages;
        self.quarantined_sats += other.quarantined_sats;
        self.masked_propagations += other.masked_propagations;
        self.worker_failed += other.worker_failed;
        self.worker_retries += other.worker_retries;
        self.quarantined_workers += other.quarantined_workers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SlotObservation;
    use starsense_astro::time::JulianDate;

    fn obs(outcome: SlotOutcome) -> SlotObservation {
        SlotObservation {
            terminal_id: 0,
            slot: 1,
            slot_start: JulianDate::J2000,
            local_hour: 12.0,
            available: Vec::new(),
            chosen: None,
            truth_id: None,
            outcome,
        }
    }

    #[test]
    fn collect_buckets_every_outcome() {
        let stream = vec![
            obs(SlotOutcome::Observed { confidence: 0.4 }),
            obs(SlotOutcome::Observed { confidence: 1.0 }),
            obs(SlotOutcome::Ambiguous { margin: 0.01 }),
            obs(SlotOutcome::NoData(DegradeReason::FrameDropped { attempts: 3 })),
            obs(SlotOutcome::NoData(DegradeReason::StaleFrame)),
            obs(SlotOutcome::NoData(DegradeReason::Outage)),
            obs(SlotOutcome::NoData(DegradeReason::EmptyTrail)),
            obs(SlotOutcome::NoData(DegradeReason::WorkerFailed)),
            obs(SlotOutcome::Unrecorded),
        ];
        let s = DegradationStats::collect(&stream);
        assert_eq!(s.slots, 9);
        assert_eq!(s.observed, 2);
        assert_eq!(s.ambiguous, 1);
        assert_eq!(s.no_data, 5);
        assert_eq!(s.frame_dropped, 1);
        assert_eq!(s.stale_frames, 1);
        assert_eq!(s.outages, 1);
        assert_eq!(s.worker_failed, 1);
        assert!((s.observed_rate() - 2.0 / 9.0).abs() < 1e-12);
        assert!((s.degraded_rate() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_healthy() {
        let s = DegradationStats::collect(&[]);
        assert_eq!(s.observed_rate(), 1.0);
        assert_eq!(s.degraded_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = DegradationStats::collect(&[obs(SlotOutcome::Observed { confidence: 1.0 })]);
        let b = DegradationStats::collect(&[
            obs(SlotOutcome::Ambiguous { margin: 0.02 }),
            obs(SlotOutcome::NoData(DegradeReason::Outage)),
        ]);
        a.merge(&b);
        assert_eq!(a.slots, 3);
        assert_eq!(a.observed, 1);
        assert_eq!(a.ambiguous, 1);
        assert_eq!(a.no_data, 1);
        assert_eq!(a.outages, 1);
    }

    #[test]
    fn outcome_predicates_partition() {
        let outcomes = [
            SlotOutcome::Observed { confidence: 0.5 },
            SlotOutcome::Ambiguous { margin: 0.0 },
            SlotOutcome::NoData(DegradeReason::TinyTrail),
            SlotOutcome::Unrecorded,
        ];
        assert!(outcomes[0].is_observed() && !outcomes[0].is_degraded());
        assert!(!outcomes[1].is_observed() && outcomes[1].is_degraded());
        assert!(!outcomes[2].is_observed() && outcomes[2].is_degraded());
        assert!(!outcomes[3].is_observed() && !outcomes[3].is_degraded());
    }
}
