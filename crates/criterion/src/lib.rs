//! Offline, from-scratch drop-in for the subset of the `criterion` API the
//! workspace's benches use.
//!
//! The build container has no crates-io access, so the workspace vendors a
//! minimal timing harness with the same call surface: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Statistics
//! are simple — per-sample mean plus a median across samples — with none
//! of criterion's outlier analysis, HTML reports, or baseline storage.
//!
//! This is benchmarking *tooling*, not simulation code: it reads the
//! monotonic clock, which `starlint`'s D-series determinism rules ban in
//! simulation crates. The lint policy classifies this crate as tooling.
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Passes a value through while defeating constant-folding, forwarding to
/// [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

static SMOKE: AtomicBool = AtomicBool::new(false);

/// True when the harness runs in smoke mode (`--test` on the command line,
/// matching `cargo bench -- --test` with real criterion): every benchmark
/// executes once to prove it still runs, with no timing loops. CI uses
/// this to keep benches compiling and running without paying for a full
/// measurement session.
pub fn is_smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// Parses harness arguments; called by [`criterion_main!`]. Currently the
/// only recognized flag is `--test` (smoke mode); everything else is
/// ignored, like criterion ignores filters it cannot match.
pub fn configure_from_args<I: IntoIterator<Item = String>>(args: I) {
    for arg in args {
        if arg == "--test" {
            SMOKE.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs the timed closure for one sample.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration measured for the most recent `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count so a sample takes a few
    /// milliseconds, and records the mean time per iteration. In smoke mode
    /// the closure runs exactly once and only that single time is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the cost of one call.
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        if is_smoke() {
            self.last_ns_per_iter = once.as_nanos() as f64;
            return;
        }

        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let samples = if is_smoke() { 1 } else { samples };
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        per_iter.push(b.last_ns_per_iter);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter.first().copied().unwrap_or(0.0);
    // starlint: allow(Q201, reason = "the bench reporter's whole job is printing results to stdout")
    println!(
        "{name:<44} median {}   best {}   ({} samples)",
        format_ns(median),
        format_ns(best),
        samples
    );
}

/// Top-level benchmark driver; one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_samples(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { prefix: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_samples(&format!("{}/{}", self.prefix, name), self.sample_size, f);
        self
    }

    /// Ends the group. (Present for API compatibility; drop does the work.)
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
/// Command-line flags are parsed first, so `cargo bench -- --test` runs
/// every registered benchmark once in smoke mode.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::configure_from_args(std::env::args().skip(1));
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut b = Bencher::default();
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.last_ns_per_iter > 0.0);
    }

    #[test]
    fn group_prefixes_names_and_sets_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("fast", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn smoke_flag_is_parsed_from_args() {
        // Note: SMOKE is process-global, so this test sets and unsets it;
        // the other tests here don't depend on timing-loop iteration
        // counts, so ordering doesn't matter.
        configure_from_args(["--bench".to_string(), "--test".to_string()]);
        assert!(is_smoke());
        let mut b = Bencher::default();
        let mut calls = 0u32;
        b.iter(|| {
            calls += 1;
            black_box(calls)
        });
        assert_eq!(calls, 1, "smoke mode must run the closure exactly once");
        SMOKE.store(false, Ordering::Relaxed);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains('s'));
    }
}
