//! Property tests for the constellation crate's spatial visibility index.
//!
//! The contract under test is the repo's standing invariant for every
//! optimization: the indexed field-of-view path must be **bit-identical**
//! to the linear scan — same satellites, same order, same look-angle bit
//! patterns — for arbitrary epochs, elevation cutoffs, and observer
//! locations, and the candidate set must be a superset of the true field
//! of view.

use proptest::prelude::*;
use starsense_astro::frames::{geodetic_to_ecef, Geodetic};
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder, VisibleSat};
use std::sync::OnceLock;

/// One shared catalog for every case: building it is the expensive part,
/// and the properties quantify over (epoch, observer, cutoff), not seeds.
fn catalog() -> &'static Constellation {
    static CATALOG: OnceLock<Constellation> = OnceLock::new();
    CATALOG.get_or_init(|| ConstellationBuilder::starlink_mini().seed(42).build())
}

fn assert_fov_bit_identical(linear: &[VisibleSat], indexed: &[VisibleSat]) {
    assert_eq!(linear.len(), indexed.len(), "field-of-view size");
    for (a, b) in linear.iter().zip(indexed) {
        assert_eq!(a.norad_id, b.norad_id);
        assert_eq!(a.look.elevation_deg.to_bits(), b.look.elevation_deg.to_bits());
        assert_eq!(a.look.azimuth_deg.to_bits(), b.look.azimuth_deg.to_bits());
        assert_eq!(a.look.range_km.to_bits(), b.look.range_km.to_bits());
        assert_eq!(a.teme, b.teme);
        assert_eq!(a.sunlit, b.sunlit);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
        assert_eq!(a.launch, b.launch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_fov_is_bit_identical_to_linear_scan(
        hours in 0.0f64..240.0,
        lat in -84.0f64..84.0,
        lon in -180.0f64..180.0,
        alt in 0.0f64..3.0,
        min_el in 5.0f64..70.0,
    ) {
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let obs = Geodetic::new(lat, lon, alt);
        let snap = c.snapshot(at);
        let linear = c.field_of_view_from(&snap, obs, min_el);
        let mut scratch = Vec::new();
        let indexed = c.field_of_view_indexed(&snap, obs, min_el, &mut scratch);
        assert_fov_bit_identical(&linear, &indexed);
    }

    #[test]
    fn candidate_set_is_a_sorted_superset_of_the_fov(
        hours in 0.0f64..240.0,
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        min_el in 0.0f64..80.0,
    ) {
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let obs = Geodetic::new(lat, lon, 0.1);
        let snap = c.snapshot(at);
        let cand = snap.visibility_index().candidates(obs, min_el);
        prop_assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        for v in c.field_of_view_from(&snap, obs, min_el) {
            let si = c.sats().iter().position(|s| s.norad_id == v.norad_id).unwrap() as u32;
            prop_assert!(
                cand.binary_search(&si).is_ok(),
                "satellite {} at elevation {:.2} missing from candidates \
                 (obs ({lat:.2},{lon:.2}) cutoff {min_el:.2})",
                v.norad_id,
                v.look.elevation_deg
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_results(
        hours in 0.0f64..48.0,
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
    ) {
        // The same scratch vector survives across unrelated queries; stale
        // contents must never leak into a later result.
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let snap = c.snapshot(at);
        let mut scratch = vec![3, 1, 4, 1, 5];
        let first = c.field_of_view_indexed(&snap, Geodetic::new(lat, lon, 0.1), 25.0, &mut scratch);
        let second =
            c.field_of_view_indexed(&snap, Geodetic::new(lat, lon, 0.1), 25.0, &mut scratch);
        assert_fov_bit_identical(&first, &second);
        let fresh = c.field_of_view_from(&snap, Geodetic::new(-lat, lon, 0.1), 40.0);
        let reused =
            c.field_of_view_indexed(&snap, Geodetic::new(-lat, lon, 0.1), 40.0, &mut scratch);
        assert_fov_bit_identical(&fresh, &reused);
    }

    #[test]
    fn cohort_candidate_superset_covers_every_member_fov(
        hours in 0.0f64..240.0,
        lat in -85.0f64..85.0,
        lon in -179.0f64..179.0,
        spread in 0.0f64..1.5,
        min_el in 5.0f64..70.0,
    ) {
        // The cohort contract: the shared candidate set gathered once for
        // the anchor — cap at the smallest member radius, widened by the
        // largest member-to-anchor angle — is a superset of every member's
        // own field of view. This is the exact construction the scheduler's
        // cohort fast path relies on for bit-identity.
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let snap = c.snapshot(at);
        let index = snap.visibility_index();

        let members: Vec<Geodetic> = (0..5)
            .map(|i| {
                let t = i as f64;
                Geodetic::new(
                    (lat + spread * ((t * 0.61).sin() * 0.5)).clamp(-89.9, 89.9),
                    lon + spread * ((t * 0.83).cos() * 0.5),
                    0.1 + 0.05 * t,
                )
            })
            .collect();

        let anchor_ecef = geodetic_to_ecef(members[0]);
        let anchor_unit = anchor_ecef.unit();
        let mut min_radius = f64::INFINITY;
        let mut widen_deg: f64 = 0.0;
        for m in &members {
            let e = geodetic_to_ecef(*m);
            min_radius = min_radius.min(e.norm());
            widen_deg = widen_deg
                .max(anchor_unit.dot(e.unit()).clamp(-1.0, 1.0).acos().to_degrees());
        }

        let mut cand = Vec::new();
        index.cohort_candidates_into(anchor_ecef, min_radius, widen_deg + 1e-7, min_el, &mut cand);
        prop_assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted and unique");

        for m in &members {
            for v in c.field_of_view_from(&snap, *m, min_el) {
                prop_assert!(
                    cand.binary_search(&v.catalog_index).is_ok(),
                    "satellite {} at elevation {:.2} visible from member ({:.3},{:.3}) \
                     missing from cohort candidates (anchor ({lat:.2},{lon:.2}), \
                     spread {spread:.2}, cutoff {min_el:.2})",
                    v.norad_id,
                    v.look.elevation_deg,
                    m.lat_deg,
                    m.lon_deg,
                );
            }
        }
    }
}

#[test]
fn deep_cutoff_degenerates_to_a_full_scan_and_stays_bit_identical() {
    // A cutoff of -40° pushes the cap radius past FULL_SCAN_CAP_DEG, so
    // the grid walk is abandoned for a full catalog scan — and the indexed
    // path must still match the linear scan bit for bit.
    let c = catalog();
    let snap = c.snapshot(JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0));
    let obs = Geodetic::new(41.66, -91.53, 0.2);
    let cand = snap.visibility_index().candidates(obs, -40.0);
    assert_eq!(
        cand,
        (0..c.len() as u32).collect::<Vec<u32>>(),
        "degenerate cap must fall back to the whole catalog"
    );
    let mut scratch = Vec::new();
    assert_fov_bit_identical(
        &c.field_of_view_from(&snap, obs, -40.0),
        &c.field_of_view_indexed(&snap, obs, -40.0, &mut scratch),
    );
}

#[test]
fn polar_observers_straddling_the_lon_wrap_stay_bit_identical() {
    // Near the poles a cap spans every longitude column, and at ±180° the
    // column walk wraps; both paths of the wrap must agree with the linear
    // scan exactly.
    let c = catalog();
    let base = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
    let mut scratch = Vec::new();
    for hours in [0.0, 37.5, 111.0] {
        let snap = c.snapshot(base.plus_seconds(hours * 3600.0));
        for &(lat, lon) in
            &[(87.3, 179.9), (87.3, -179.9), (89.5, 0.0), (-88.7, 179.2), (-89.9, -179.8)]
        {
            let obs = Geodetic::new(lat, lon, 0.1);
            for min_el in [5.0, 25.0, 45.0] {
                let cand = snap.visibility_index().candidates(obs, min_el);
                assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted unique at ({lat},{lon})");
                assert_fov_bit_identical(
                    &c.field_of_view_from(&snap, obs, min_el),
                    &c.field_of_view_indexed(&snap, obs, min_el, &mut scratch),
                );
            }
        }
    }
}

#[test]
fn empty_snapshot_yields_empty_fov_through_every_path() {
    // Before the first launch the snapshot holds no live entries: the
    // degenerate index falls back to full-scan candidate sets (rejected by
    // the exact test) and both cohort and per-terminal paths return
    // nothing.
    let c = catalog();
    let earliest = c.sats().iter().map(|s| s.launch.date.0).fold(f64::INFINITY, f64::min);
    let snap = c.snapshot(JulianDate(earliest - 10.0));
    let obs = Geodetic::new(41.66, -91.53, 0.2);

    let mut cand = Vec::new();
    snap.visibility_index().cohort_candidates_into(
        geodetic_to_ecef(obs),
        geodetic_to_ecef(obs).norm(),
        0.5,
        25.0,
        &mut cand,
    );
    assert_eq!(cand.len(), c.len(), "degenerate bound falls back to the whole catalog");

    let mut scratch = Vec::new();
    assert!(c.field_of_view_from(&snap, obs, 25.0).is_empty());
    assert!(c.field_of_view_indexed(&snap, obs, 25.0, &mut scratch).is_empty());
    assert!(c.field_of_view_from_candidates(&snap, obs, 25.0, &cand).is_empty());
}

#[test]
fn singleton_cohort_with_zero_widen_matches_per_terminal_candidates() {
    // A cohort of one, unwidened, must gather exactly the candidate set of
    // the plain per-terminal query: same cap formula, same grid walk.
    let c = catalog();
    let snap = c.snapshot(JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0));
    for &(lat, lon) in &[(41.66, -91.53), (-33.86, 151.21), (78.0, 15.0), (0.0, -179.99)] {
        let obs = Geodetic::new(lat, lon, 0.2);
        let obs_ecef = geodetic_to_ecef(obs);
        let mut cohort = Vec::new();
        snap.visibility_index().cohort_candidates_into(
            obs_ecef,
            obs_ecef.norm(),
            0.0,
            25.0,
            &mut cohort,
        );
        assert_eq!(cohort, snap.visibility_index().candidates(obs, 25.0), "at ({lat},{lon})");
    }
}

#[test]
fn snapshot_clone_preserves_a_built_index() {
    let c = catalog();
    let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
    let snap = c.snapshot(at);
    let before_clone = snap.visibility_index().candidates(Geodetic::new(41.66, -91.53, 0.2), 25.0);
    let cloned = snap.clone();
    let after_clone = cloned.visibility_index().candidates(Geodetic::new(41.66, -91.53, 0.2), 25.0);
    assert_eq!(before_clone, after_clone);
}
