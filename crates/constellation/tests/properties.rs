//! Property tests for the constellation crate's spatial visibility index.
//!
//! The contract under test is the repo's standing invariant for every
//! optimization: the indexed field-of-view path must be **bit-identical**
//! to the linear scan — same satellites, same order, same look-angle bit
//! patterns — for arbitrary epochs, elevation cutoffs, and observer
//! locations, and the candidate set must be a superset of the true field
//! of view.

use proptest::prelude::*;
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder, VisibleSat};
use std::sync::OnceLock;

/// One shared catalog for every case: building it is the expensive part,
/// and the properties quantify over (epoch, observer, cutoff), not seeds.
fn catalog() -> &'static Constellation {
    static CATALOG: OnceLock<Constellation> = OnceLock::new();
    CATALOG.get_or_init(|| ConstellationBuilder::starlink_mini().seed(42).build())
}

fn assert_fov_bit_identical(linear: &[VisibleSat], indexed: &[VisibleSat]) {
    assert_eq!(linear.len(), indexed.len(), "field-of-view size");
    for (a, b) in linear.iter().zip(indexed) {
        assert_eq!(a.norad_id, b.norad_id);
        assert_eq!(a.look.elevation_deg.to_bits(), b.look.elevation_deg.to_bits());
        assert_eq!(a.look.azimuth_deg.to_bits(), b.look.azimuth_deg.to_bits());
        assert_eq!(a.look.range_km.to_bits(), b.look.range_km.to_bits());
        assert_eq!(a.teme, b.teme);
        assert_eq!(a.sunlit, b.sunlit);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
        assert_eq!(a.launch, b.launch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_fov_is_bit_identical_to_linear_scan(
        hours in 0.0f64..240.0,
        lat in -84.0f64..84.0,
        lon in -180.0f64..180.0,
        alt in 0.0f64..3.0,
        min_el in 5.0f64..70.0,
    ) {
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let obs = Geodetic::new(lat, lon, alt);
        let snap = c.snapshot(at);
        let linear = c.field_of_view_from(&snap, obs, min_el);
        let mut scratch = Vec::new();
        let indexed = c.field_of_view_indexed(&snap, obs, min_el, &mut scratch);
        assert_fov_bit_identical(&linear, &indexed);
    }

    #[test]
    fn candidate_set_is_a_sorted_superset_of_the_fov(
        hours in 0.0f64..240.0,
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        min_el in 0.0f64..80.0,
    ) {
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let obs = Geodetic::new(lat, lon, 0.1);
        let snap = c.snapshot(at);
        let cand = snap.visibility_index().candidates(obs, min_el);
        prop_assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        for v in c.field_of_view_from(&snap, obs, min_el) {
            let si = c.sats().iter().position(|s| s.norad_id == v.norad_id).unwrap() as u32;
            prop_assert!(
                cand.binary_search(&si).is_ok(),
                "satellite {} at elevation {:.2} missing from candidates \
                 (obs ({lat:.2},{lon:.2}) cutoff {min_el:.2})",
                v.norad_id,
                v.look.elevation_deg
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_results(
        hours in 0.0f64..48.0,
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
    ) {
        // The same scratch vector survives across unrelated queries; stale
        // contents must never leak into a later result.
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let snap = c.snapshot(at);
        let mut scratch = vec![3, 1, 4, 1, 5];
        let first = c.field_of_view_indexed(&snap, Geodetic::new(lat, lon, 0.1), 25.0, &mut scratch);
        let second =
            c.field_of_view_indexed(&snap, Geodetic::new(lat, lon, 0.1), 25.0, &mut scratch);
        assert_fov_bit_identical(&first, &second);
        let fresh = c.field_of_view_from(&snap, Geodetic::new(-lat, lon, 0.1), 40.0);
        let reused =
            c.field_of_view_indexed(&snap, Geodetic::new(-lat, lon, 0.1), 40.0, &mut scratch);
        assert_fov_bit_identical(&fresh, &reused);
    }
}

#[test]
fn snapshot_clone_preserves_a_built_index() {
    let c = catalog();
    let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
    let snap = c.snapshot(at);
    let before_clone = snap.visibility_index().candidates(Geodetic::new(41.66, -91.53, 0.2), 25.0);
    let cloned = snap.clone();
    let after_clone = cloned.visibility_index().candidates(Geodetic::new(41.66, -91.53, 0.2), 25.0);
    assert_eq!(before_clone, after_clone);
}
