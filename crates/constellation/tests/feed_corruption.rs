//! End-to-end catalog corruption round trip: render the published
//! catalog, corrupt it with a seeded `FaultPlan`, and verify the
//! resilient loader degrades gracefully — every record accounted for,
//! no panics, and damage monotone in the injected rate.

use starsense_constellation::{load_catalog_text, ConstellationBuilder};
use starsense_faults::{FaultPlan, FaultRates};

fn tle_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed, FaultRates { tle_corrupt: rate, ..FaultRates::none() })
}

#[test]
fn corrupted_catalog_loads_lossily_with_full_accounting() {
    let c = ConstellationBuilder::starlink_mini().seed(42).build();
    let text = c.published_catalog_text();

    // Fault-free plan: corruption is the identity, load is clean.
    let clean = load_catalog_text(&FaultPlan::none().corrupt_catalog_text(&text));
    assert!(clean.is_clean());
    assert_eq!(clean.usable.len(), c.len());

    let mut prev_defects = 0usize;
    for &rate in &[0.0, 0.1, 0.3, 0.8] {
        let plan = tle_plan(7, rate);
        let load = load_catalog_text(&plan.corrupt_catalog_text(&text));
        // The corruptor only damages wire format, never element physics,
        // so every record lands in exactly one bucket.
        assert_eq!(
            load.usable.len() + load.defects.len(),
            c.len(),
            "accounting broken at rate {rate}"
        );
        assert!(load.rejected.is_empty());
        assert!(
            load.defects.len() >= prev_defects,
            "defects not monotone at rate {rate}: {} < {prev_defects}",
            load.defects.len()
        );
        prev_defects = load.defects.len();
        // Survivors must be genuine catalog members.
        for tle in &load.usable {
            assert!(c.get(tle.norad_id).is_some());
        }
    }
    assert!(prev_defects > c.len() / 2, "rate 0.8 should break most records");
}

#[test]
fn corrupted_load_is_deterministic() {
    let c = ConstellationBuilder::starlink_mini().seed(42).build();
    let text = c.published_catalog_text();
    let a = load_catalog_text(&tle_plan(99, 0.4).corrupt_catalog_text(&text));
    let b = load_catalog_text(&tle_plan(99, 0.4).corrupt_catalog_text(&text));
    assert_eq!(a.usable.len(), b.usable.len());
    assert_eq!(a.defects, b.defects);
    let ids_a: Vec<u32> = a.usable.iter().map(|t| t.norad_id).collect();
    let ids_b: Vec<u32> = b.usable.iter().map(|t| t.norad_id).collect();
    assert_eq!(ids_a, ids_b);
}
