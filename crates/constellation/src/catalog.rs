//! The satellite catalog: per-satellite state and field-of-view queries.

use crate::index::VisibilityIndex;
use starsense_astro::frames::{teme_to_ecef, Geodetic, LookAngles, Topocentric};
use starsense_astro::sun::{is_sunlit_given_sun, sun_position_teme};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;
use starsense_sgp4::{Elements, Sgp4, Sgp4Batch, Tle};
use std::sync::OnceLock;

/// A launch batch: satellites launched together share a date, as Starlink
/// satellites do (§5.2 bins satellites "by the year and month of their
/// launch batch").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchBatch {
    /// Launch sequence number within the synthetic history (0-based).
    pub index: u32,
    /// Launch date.
    pub date: JulianDate,
    /// Launch year (for binning).
    pub year: i32,
    /// Launch month, 1–12 (for binning).
    pub month: u32,
}

impl LaunchBatch {
    /// `"YYYY-MM"` label used by Figure 6's x axis.
    pub fn label(&self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }
}

/// One satellite of the synthetic constellation.
#[derive(Debug, Clone)]
pub struct Satellite {
    /// NORAD-style catalog number (unique).
    pub norad_id: u32,
    /// Display name, e.g. `"STARSENSE-1042"`.
    pub name: String,
    /// Launch batch the satellite belongs to.
    pub launch: LaunchBatch,
    /// True mean elements (the state the operator knows).
    pub elements: Elements,
    /// Published TLE: stale epoch + fit noise (the state the public knows).
    pub published: Tle,
    truth: Sgp4,
    published_sgp4: Sgp4,
}

impl Satellite {
    /// Builds a satellite from truth elements and its published TLE.
    ///
    /// # Errors
    ///
    /// Propagates SGP4 initialization failures (unphysical elements).
    pub fn new(
        name: String,
        launch: LaunchBatch,
        elements: Elements,
        published: Tle,
    ) -> Result<Satellite, starsense_sgp4::Sgp4Error> {
        let truth = Sgp4::new(&elements)?;
        let published_sgp4 = Sgp4::new(&published.elements())?;
        Ok(Satellite {
            norad_id: elements.norad_id,
            name,
            launch,
            elements,
            published,
            truth,
            published_sgp4,
        })
    }

    /// True TEME position at `at` (what the operator's scheduler sees).
    ///
    /// Returns `None` if propagation fails (decay) — callers treat such a
    /// satellite as unavailable.
    pub fn true_position(&self, at: JulianDate) -> Option<Vec3> {
        self.truth.propagate(at).ok().map(|s| s.position_km)
    }

    /// TEME position predicted from the *published* TLE (what the paper's
    /// measurement methodology has access to).
    pub fn published_position(&self, at: JulianDate) -> Option<Vec3> {
        self.published_sgp4.propagate(at).ok().map(|s| s.position_km)
    }

    /// Age of the satellite at `at`, in days since launch.
    pub fn age_days(&self, at: JulianDate) -> f64 {
        at.seconds_since(self.launch.date) / 86_400.0
    }

    /// The initialized **truth** propagator (operator-side state).
    ///
    /// Exposed so operator-side engines — the netemu slot-cohort loop —
    /// can transpose the serving set into an [`Sgp4Batch`] instead of
    /// propagating satellite-by-satellite. Measurement-side code must keep
    /// using [`Satellite::published_position`].
    pub fn truth_propagator(&self) -> &Sgp4 {
        &self.truth
    }
}

/// A satellite visible from a terminal at one instant, with everything the
/// scheduler and the analyses need about it.
#[derive(Debug, Clone)]
pub struct VisibleSat {
    /// Catalog number.
    pub norad_id: u32,
    /// Position of the satellite in the catalog (index into
    /// [`Constellation::sats`] and [`Snapshot::entries`]) — the key
    /// per-slot satellite tables are indexed by.
    pub catalog_index: u32,
    /// Look angles from the terminal (true positions).
    pub look: LookAngles,
    /// True TEME position, km.
    pub teme: Vec3,
    /// Whether the satellite is in sunlight.
    pub sunlit: bool,
    /// Age in days since launch.
    pub age_days: f64,
    /// Launch batch (for §5.2 binning).
    pub launch: LaunchBatch,
}

/// One satellite's propagated state within a [`Snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotEntry {
    /// True TEME position, km.
    pub teme: Vec3,
    /// The same position rotated to ECEF — cached here so that per-terminal
    /// look-angle queries share one rotation per satellite per instant
    /// instead of redoing it for every terminal.
    pub ecef: Vec3,
    /// Whether the satellite is in sunlight.
    pub sunlit: bool,
}

/// True positions (and sunlit flags) of every catalog satellite at one
/// instant — the shared input for several same-instant field-of-view
/// queries. Entries are `None` for unlaunched or decayed satellites.
#[derive(Debug)]
pub struct Snapshot {
    at: JulianDate,
    positions: Vec<Option<SnapshotEntry>>,
    /// Spatial index over the entries, built lazily by the first
    /// field-of-view query that wants it and shared by every later one
    /// (snapshots travel between terminals and worker threads as `Arc`s).
    index: OnceLock<VisibilityIndex>,
}

impl Clone for Snapshot {
    fn clone(&self) -> Snapshot {
        let index = OnceLock::new();
        if let Some(built) = self.index.get() {
            let _ = index.set(built.clone());
        }
        Snapshot { at: self.at, positions: self.positions.clone(), index }
    }
}

impl Snapshot {
    /// The instant the snapshot was taken at.
    pub fn at(&self) -> JulianDate {
        self.at
    }

    /// Number of catalog entries (including unavailable ones).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the snapshot covers no satellites.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Per-satellite entries, indexed like [`Constellation::sats`].
    pub fn entries(&self) -> &[Option<SnapshotEntry>] {
        &self.positions
    }

    /// The snapshot's [`VisibilityIndex`], built on first use and reused
    /// by every subsequent caller (and thread) sharing the snapshot.
    pub fn visibility_index(&self) -> &VisibilityIndex {
        self.index.get_or_init(|| VisibilityIndex::build(self))
    }
}

/// A complete satellite catalog.
#[derive(Debug, Clone)]
pub struct Constellation {
    sats: Vec<Satellite>,
    /// Struct-of-arrays transposes of every satellite's propagators, built
    /// once at construction so whole-catalog propagation (snapshots,
    /// published rows) runs through the batched SGP4 path. Lane `i`
    /// corresponds to `sats[i]`.
    truth_batch: Sgp4Batch,
    published_batch: Sgp4Batch,
}

impl Constellation {
    /// Wraps a list of satellites. IDs must be unique.
    ///
    /// # Panics
    ///
    /// Panics if two satellites share a NORAD id (a generation bug).
    pub fn new(sats: Vec<Satellite>) -> Constellation {
        let mut ids: Vec<u32> = sats.iter().map(|s| s.norad_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sats.len(), "duplicate NORAD ids in catalog");
        let truth_batch = Sgp4Batch::from_propagators(sats.iter().map(|s| &s.truth));
        let published_batch = Sgp4Batch::from_propagators(sats.iter().map(|s| &s.published_sgp4));
        Constellation { sats, truth_batch, published_batch }
    }

    /// All satellites.
    pub fn sats(&self) -> &[Satellite] {
        &self.sats
    }

    /// Number of satellites.
    pub fn len(&self) -> usize {
        self.sats.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sats.is_empty()
    }

    /// Looks a satellite up by catalog number.
    pub fn get(&self, norad_id: u32) -> Option<&Satellite> {
        self.sats.iter().find(|s| s.norad_id == norad_id)
    }

    /// Every satellite above `min_elevation_deg` as seen from `observer` at
    /// `at`, using **true** positions — this is the scheduler's view and the
    /// ground truth for "available satellites".
    ///
    /// The paper: "terminals can connect to any satellite at an angle of
    /// elevation higher than 25°" and "on average, there are ∼40 satellites
    /// in the field of view of a user terminal during a 15 second slot".
    pub fn field_of_view(
        &self,
        observer: Geodetic,
        at: JulianDate,
        min_elevation_deg: f64,
    ) -> Vec<VisibleSat> {
        let snap = self.snapshot(at);
        self.field_of_view_from(&snap, observer, min_elevation_deg)
    }

    /// Propagates the whole catalog once at `at` (true positions), so that
    /// several field-of-view queries at the same instant — one per terminal
    /// every slot — share the propagation work.
    ///
    /// Runs through the struct-of-arrays [`Sgp4Batch`] path; each entry is
    /// bit-identical to what per-satellite [`Satellite::true_position`]
    /// calls would produce (the batch propagator's contract).
    pub fn snapshot(&self, at: JulianDate) -> Snapshot {
        let sun = sun_position_teme(at);
        let mut teme = Vec::new();
        self.truth_batch.positions_into(at, &mut teme);
        let positions = self
            .sats
            .iter()
            .zip(&teme)
            .map(|(sat, lane)| {
                if sat.launch.date > at {
                    return None; // not yet in orbit
                }
                let teme = (*lane)?;
                Some(SnapshotEntry {
                    teme,
                    ecef: teme_to_ecef(teme, at),
                    sunlit: is_sunlit_given_sun(teme, sun),
                })
            })
            .collect();
        Snapshot { at, positions, index: OnceLock::new() }
    }

    /// Published-TLE TEME positions of the whole catalog at `at`, through
    /// the batched path — bit-identical, entry for entry, to calling
    /// [`Satellite::published_position`] per satellite. Indexed like
    /// [`Constellation::sats`].
    pub fn published_row(&self, at: JulianDate) -> Vec<Option<Vec3>> {
        self.published_batch.positions_at(at)
    }

    /// Field-of-view query against a prepared [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Panics when `snap` was taken from a different catalog (length
    /// mismatch).
    pub fn field_of_view_from(
        &self,
        snap: &Snapshot,
        observer: Geodetic,
        min_elevation_deg: f64,
    ) -> Vec<VisibleSat> {
        assert_eq!(snap.positions.len(), self.sats.len(), "snapshot/catalog mismatch");
        let topo = Topocentric::new(observer);
        let mut out = Vec::new();
        for (si, entry) in snap.positions.iter().enumerate() {
            let Some(entry) = entry else { continue };
            self.admit(snap, si, entry, &topo, min_elevation_deg, &mut out);
        }
        out
    }

    /// Field-of-view query answered through the snapshot's
    /// [`VisibilityIndex`]: only the candidate bucket neighborhood is
    /// tested instead of the whole catalog. The index returns a provable
    /// superset in catalog order and this method applies the *same*
    /// per-satellite test as [`Constellation::field_of_view_from`], so the
    /// result is bit-identical to the linear scan (property-tested in
    /// `tests/properties.rs`).
    ///
    /// `scratch` holds the candidate indices between calls so a per-slot,
    /// per-terminal caller allocates nothing here; pass any `Vec` (it is
    /// cleared first).
    ///
    /// # Panics
    ///
    /// Panics when `snap` was taken from a different catalog (length
    /// mismatch).
    pub fn field_of_view_indexed(
        &self,
        snap: &Snapshot,
        observer: Geodetic,
        min_elevation_deg: f64,
        scratch: &mut Vec<u32>,
    ) -> Vec<VisibleSat> {
        assert_eq!(snap.positions.len(), self.sats.len(), "snapshot/catalog mismatch");
        snap.visibility_index().candidates_into(observer, min_elevation_deg, scratch);
        self.field_of_view_from_candidates(snap, observer, min_elevation_deg, scratch)
    }

    /// Field-of-view query over an explicit candidate list (ascending
    /// catalog indices) — the exact-test half the cohort fast path runs
    /// after its shared superset + prefilter stage. Applies the same
    /// per-satellite [`Constellation::admit`] test as the linear scan, so
    /// as long as `candidates` is a superset of the satellites above the
    /// cutoff the result is bit-identical to
    /// [`Constellation::field_of_view_from`].
    ///
    /// # Panics
    ///
    /// Panics when `snap` was taken from a different catalog (length
    /// mismatch) or a candidate index is out of range.
    pub fn field_of_view_from_candidates(
        &self,
        snap: &Snapshot,
        observer: Geodetic,
        min_elevation_deg: f64,
        candidates: &[u32],
    ) -> Vec<VisibleSat> {
        assert_eq!(snap.positions.len(), self.sats.len(), "snapshot/catalog mismatch");
        let topo = Topocentric::new(observer);
        // The candidate list is a tight superset (tens of entries), so
        // sizing the result to it up front turns the ~log2(len) grow-and-
        // copy reallocations per call into one allocation — measurable at
        // 10⁴–10⁵ retained per-terminal lists per slot.
        let mut out = Vec::with_capacity(candidates.len());
        for &si in candidates {
            let si = si as usize;
            let Some(entry) = &snap.positions[si] else { continue };
            self.admit(snap, si, entry, &topo, min_elevation_deg, &mut out);
        }
        out
    }

    /// The one per-satellite visibility test every field-of-view path
    /// shares: compute exact look angles (through the caller's cached
    /// [`Topocentric`] frame — bit-identical to the free `look_angles`)
    /// and admit the satellite when it clears the cutoff. Keeping this in
    /// one place is what makes the indexed and cohort paths bit-identical
    /// to the linear scan by construction.
    #[inline]
    fn admit(
        &self,
        snap: &Snapshot,
        si: usize,
        entry: &SnapshotEntry,
        topo: &Topocentric,
        min_elevation_deg: f64,
        out: &mut Vec<VisibleSat>,
    ) {
        let sat = &self.sats[si];
        let look = topo.look_angles(entry.ecef);
        if look.elevation_deg >= min_elevation_deg {
            out.push(VisibleSat {
                norad_id: sat.norad_id,
                catalog_index: si as u32,
                look,
                teme: entry.teme,
                sunlit: entry.sunlit,
                age_days: sat.age_days(snap.at),
                launch: sat.launch,
            });
        }
    }

    /// Renders the published catalog as CelesTrak-style 3LE text, exercising
    /// the TLE formatting path end-to-end.
    pub fn published_catalog_text(&self) -> String {
        let mut out = String::new();
        for sat in &self.sats {
            let (l1, l2) = sat.published.format_lines();
            out.push_str(&sat.name);
            out.push('\n');
            out.push_str(&l1);
            out.push('\n');
            out.push_str(&l2);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConstellationBuilder;

    fn mini() -> Constellation {
        ConstellationBuilder::starlink_mini().seed(42).build()
    }

    #[test]
    fn mini_constellation_has_expected_size() {
        let c = mini();
        assert!(c.len() > 300, "len = {}", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn get_finds_each_satellite() {
        let c = mini();
        let first = &c.sats()[0];
        assert_eq!(c.get(first.norad_id).unwrap().norad_id, first.norad_id);
        assert!(c.get(999_999).is_none());
    }

    #[test]
    fn field_of_view_contains_tens_of_sats_for_full_constellation() {
        // Full-scale constellation: paper reports ~40 sats above 25°.
        let c = ConstellationBuilder::starlink_gen1().seed(1).build();
        let iowa = Geodetic::new(41.66, -91.53, 0.2);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let fov = c.field_of_view(iowa, at, 25.0);
        assert!(
            (15..=90).contains(&fov.len()),
            "expected tens of visible satellites, got {}",
            fov.len()
        );
        for v in &fov {
            assert!(v.look.elevation_deg >= 25.0);
            assert!((0.0..360.0).contains(&v.look.azimuth_deg));
            assert!(v.age_days >= 0.0);
        }
    }

    #[test]
    fn unlaunched_satellites_are_invisible() {
        let c = mini();
        // Before the first launch date nothing should be visible.
        let earliest = c.sats().iter().map(|s| s.launch.date.0).fold(f64::INFINITY, f64::min);
        let before = JulianDate(earliest - 10.0);
        let iowa = Geodetic::new(41.66, -91.53, 0.2);
        assert!(c.field_of_view(iowa, before, 25.0).is_empty());
    }

    #[test]
    fn published_position_differs_from_truth_but_not_wildly() {
        let c = mini();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let mut diffs = Vec::new();
        for sat in c.sats().iter().take(50) {
            let (Some(t), Some(p)) = (sat.true_position(at), sat.published_position(at)) else {
                continue;
            };
            diffs.push(t.distance(p));
        }
        assert!(!diffs.is_empty());
        let max = diffs.iter().copied().fold(0.0, f64::max);
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(mean > 0.001, "published TLEs should not be exact (mean diff {mean} km)");
        assert!(max < 500.0, "published TLEs should stay useful (max diff {max} km)");
    }

    #[test]
    fn catalog_text_round_trips_through_parser() {
        let c = mini();
        let text = c.published_catalog_text();
        let parsed = Tle::parse_catalog(&text).expect("catalog must re-parse");
        assert_eq!(parsed.len(), c.len());
        assert_eq!(parsed[0].norad_id, c.sats()[0].norad_id);
    }

    #[test]
    fn snapshot_fov_matches_direct_fov() {
        let c = mini();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
        let iowa = Geodetic::new(41.66, -91.53, 0.2);
        let direct = c.field_of_view(iowa, at, 25.0);
        let snap = c.snapshot(at);
        assert_eq!(snap.len(), c.len());
        assert!(!snap.is_empty());
        assert!((snap.at().0 - at.0).abs() < 1e-12);
        let via_snap = c.field_of_view_from(&snap, iowa, 25.0);
        assert_eq!(direct.len(), via_snap.len());
        for (a, b) in direct.iter().zip(&via_snap) {
            assert_eq!(a.norad_id, b.norad_id);
            assert_eq!(a.look, b.look);
            assert_eq!(a.sunlit, b.sunlit);
        }
    }

    #[test]
    #[should_panic(expected = "snapshot/catalog mismatch")]
    fn snapshot_from_other_catalog_panics() {
        let a = mini();
        let b = ConstellationBuilder::starlink_gen1().seed(1).build();
        let snap = a.snapshot(JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0));
        let _ = b.field_of_view_from(&snap, Geodetic::new(0.0, 0.0, 0.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "duplicate NORAD ids")]
    fn duplicate_ids_panic() {
        let c = mini();
        let mut sats = c.sats().to_vec();
        let dup = sats[0].clone();
        sats.push(dup);
        let _ = Constellation::new(sats);
    }

    #[test]
    fn age_days_is_positive_after_launch() {
        let c = mini();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        for s in c.sats().iter().take(20) {
            assert!(s.age_days(at) > 0.0);
        }
    }
}
