//! Constellation generation.

use crate::catalog::{Constellation, LaunchBatch, Satellite};
use crate::shell::Shell;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use starsense_astro::time::JulianDate;
use starsense_sgp4::{Elements, Tle};

/// Builds a synthetic constellation: Walker shells → satellites with truth
/// elements, published (stale + noisy) TLEs, and launch batches.
///
/// All randomness comes from an explicit seed, so a given builder
/// configuration always produces the identical constellation — experiments
/// are exactly reproducible.
#[derive(Debug, Clone)]
pub struct ConstellationBuilder {
    shells: Vec<Shell>,
    epoch: JulianDate,
    seed: u64,
    staleness_hours: (f64, f64),
    fit_noise: f64,
    launch_start: JulianDate,
    launch_end: JulianDate,
    batch_size: u32,
    first_norad_id: u32,
}

impl ConstellationBuilder {
    /// Starts an empty builder with the defaults used across the
    /// reproduction: truth epoch 2023-06-01 00:00 UTC, published-TLE
    /// staleness uniform in 0–6 h (CelesTrak's refresh cadence per §4),
    /// launches spread 2020-01 … 2023-01 (Figure 6's x-axis range).
    pub fn new() -> ConstellationBuilder {
        ConstellationBuilder {
            shells: Vec::new(),
            epoch: JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0),
            seed: 0,
            staleness_hours: (0.0, 6.0),
            fit_noise: 1.0,
            launch_start: JulianDate::from_ymd_hms(2020, 1, 15, 0, 0, 0.0),
            launch_end: JulianDate::from_ymd_hms(2023, 1, 15, 0, 0, 0.0),
            batch_size: 60,
            first_norad_id: 44_000,
        }
    }

    /// Full-scale Starlink Gen-1-like constellation (~4200 satellites across
    /// four shells, per SpaceX's public filings).
    pub fn starlink_gen1() -> ConstellationBuilder {
        ConstellationBuilder::new()
            .add_shell(Shell {
                name: "shell-1 (53.0°/550km)".into(),
                inclination_deg: 53.0,
                altitude_km: 550.0,
                planes: 72,
                sats_per_plane: 22,
                phasing: 39,
            })
            .add_shell(Shell {
                name: "shell-2 (53.2°/540km)".into(),
                inclination_deg: 53.2,
                altitude_km: 540.0,
                planes: 72,
                sats_per_plane: 22,
                phasing: 17,
            })
            .add_shell(Shell {
                name: "shell-3 (70.0°/570km)".into(),
                inclination_deg: 70.0,
                altitude_km: 570.0,
                planes: 36,
                sats_per_plane: 20,
                phasing: 11,
            })
            .add_shell(Shell {
                name: "shell-4 (97.6°/560km)".into(),
                inclination_deg: 97.6,
                altitude_km: 560.0,
                planes: 6,
                sats_per_plane: 58,
                phasing: 1,
            })
    }

    /// A ~1/11-scale constellation (≈380 satellites) with the same shell
    /// structure, for unit tests and quick examples.
    pub fn starlink_mini() -> ConstellationBuilder {
        ConstellationBuilder::new()
            .add_shell(Shell {
                name: "mini-1 (53.0°/550km)".into(),
                inclination_deg: 53.0,
                altitude_km: 550.0,
                planes: 18,
                sats_per_plane: 8,
                phasing: 5,
            })
            .add_shell(Shell {
                name: "mini-2 (53.2°/540km)".into(),
                inclination_deg: 53.2,
                altitude_km: 540.0,
                planes: 18,
                sats_per_plane: 8,
                phasing: 7,
            })
            .add_shell(Shell {
                name: "mini-3 (70.0°/570km)".into(),
                inclination_deg: 70.0,
                altitude_km: 570.0,
                planes: 9,
                sats_per_plane: 6,
                phasing: 2,
            })
            .add_shell(Shell {
                name: "mini-4 (97.6°/560km)".into(),
                inclination_deg: 97.6,
                altitude_km: 560.0,
                planes: 3,
                sats_per_plane: 14,
                phasing: 1,
            })
            .batch_size(12)
    }

    /// Adds a Walker shell.
    pub fn add_shell(mut self, shell: Shell) -> Self {
        self.shells.push(shell);
        self
    }

    /// Sets the truth element epoch (also the natural simulation start).
    pub fn epoch(mut self, epoch: JulianDate) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the published-TLE epoch staleness range in hours (uniform).
    pub fn staleness_hours(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi >= lo, "staleness range must be ordered and non-negative");
        self.staleness_hours = (lo, hi);
        self
    }

    /// Scales the published-TLE element fit noise (1.0 = nominal, 0 = exact
    /// elements, just stale).
    pub fn fit_noise(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0);
        self.fit_noise = scale;
        self
    }

    /// Sets the synthetic launch-history window.
    pub fn launch_window(mut self, start: JulianDate, end: JulianDate) -> Self {
        assert!(end.0 > start.0, "launch window must be non-empty");
        self.launch_start = start;
        self.launch_end = end;
        self
    }

    /// Sets how many satellites share a launch batch.
    pub fn batch_size(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.batch_size = n;
        self
    }

    /// Generates the constellation.
    ///
    /// # Panics
    ///
    /// Panics if no shells were added, or if generated elements fail SGP4
    /// initialization (which would be a generator bug, not a data error).
    pub fn build(&self) -> Constellation {
        assert!(!self.shells.is_empty(), "constellation needs at least one shell");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Collect every (shell, slot) pair, then shuffle so launch dates are
        // uncorrelated with orbital geometry.
        let mut slots: Vec<(usize, crate::shell::WalkerSlot)> = Vec::new();
        for (si, shell) in self.shells.iter().enumerate() {
            for slot in shell.slots() {
                slots.push((si, slot));
            }
        }
        slots.shuffle(&mut rng);

        let n_batches = slots.len().div_ceil(self.batch_size as usize);
        let span_days = self.launch_end.0 - self.launch_start.0;

        let mut sats = Vec::with_capacity(slots.len());
        for (i, (si, slot)) in slots.iter().enumerate() {
            let shell = &self.shells[*si];
            let batch_index = (i / self.batch_size as usize) as u32;
            let frac =
                if n_batches > 1 { batch_index as f64 / (n_batches - 1) as f64 } else { 0.0 };
            let date = JulianDate(self.launch_start.0 + frac * span_days);
            let civil = date.to_civil();
            let launch =
                LaunchBatch { index: batch_index, date, year: civil.year, month: civil.month };

            let norad_id = self.first_norad_id + i as u32;
            let ecc = rng.random_range(1.0e-4..1.5e-3);
            let argp = rng.random_range(0.0..360.0);
            let bstar = rng.random_range(5.0e-5..2.0e-4);

            let elements = Elements::from_catalog_units(
                norad_id,
                self.epoch,
                shell.mean_motion_rev_per_day(),
                ecc,
                shell.inclination_deg,
                slot.raan_deg,
                argp,
                slot.mean_anomaly_deg,
                bstar,
            );

            let published = self.publish(&elements, launch, &mut rng);
            let name = format!("STARSENSE-{norad_id}");
            let sat = Satellite::new(name, launch, elements, published)
                // starlint: allow(P102, reason = "builder only samples valid LEO bands; an SGP4 init failure is a builder bug and must abort loudly")
                .expect("generated elements must initialize SGP4");
            sats.push(sat);
        }

        Constellation::new(sats)
    }

    /// Derives the published TLE for a satellite: epoch moved back by a
    /// random staleness, mean anomaly rewound consistently, and small
    /// Gaussian fit noise applied to the elements.
    fn publish(&self, truth: &Elements, launch: LaunchBatch, rng: &mut StdRng) -> Tle {
        let lag_hours = rng.random_range(self.staleness_hours.0..=self.staleness_hours.1);
        let lag_min = lag_hours * 60.0;
        let pub_epoch = truth.epoch.plus_minutes(-lag_min);

        // Rewind the mean anomaly along the orbit so the published elements
        // describe (approximately) the same physical trajectory.
        let ma_rewound = (truth.mo - truth.no_kozai * lag_min).rem_euclid(std::f64::consts::TAU);

        let k = self.fit_noise;
        let noisy_deg = |v: f64, sigma: f64, rng: &mut StdRng| v + gauss(rng) * sigma * k;

        let intl = intl_designator(launch);
        Tle {
            name: None,
            norad_id: truth.norad_id,
            classification: 'U',
            intl_designator: intl,
            epoch: pub_epoch,
            ndot: 1.0e-6,
            nddot: 0.0,
            bstar: truth.bstar,
            element_set_no: 999,
            inclination_deg: noisy_deg(truth.inclo.to_degrees(), 0.002, rng),
            raan_deg: noisy_deg(truth.nodeo.to_degrees(), 0.003, rng).rem_euclid(360.0),
            eccentricity: (truth.ecco + gauss(rng) * 2.0e-5 * k).clamp(1.0e-7, 0.01),
            arg_perigee_deg: noisy_deg(truth.argpo.to_degrees(), 0.05, rng).rem_euclid(360.0),
            mean_anomaly_deg: noisy_deg(ma_rewound.to_degrees(), 0.01, rng).rem_euclid(360.0),
            mean_motion_rev_day: truth.mean_motion_rev_per_day() + gauss(rng) * 2.0e-6 * k,
            rev_number: 10_000,
        }
    }
}

impl Default for ConstellationBuilder {
    fn default() -> Self {
        ConstellationBuilder::new()
    }
}

/// Standard normal sample via Box-Muller (the `rand` crate alone ships no
/// normal distribution; pulling in `rand_distr` for one function is not
/// worth a dependency).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// International designator `YYNNNP..` from a launch batch: two-digit year,
/// three-digit launch number, piece letters A, B, …, Z, AA, AB, ….
fn intl_designator(launch: LaunchBatch) -> String {
    let yy = launch.year.rem_euclid(100);
    let num = (launch.index % 999) + 1;
    format!("{yy:02}{num:03}A")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let a = ConstellationBuilder::starlink_mini().seed(9).build();
        let b = ConstellationBuilder::starlink_mini().seed(9).build();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.sats().iter().zip(b.sats()) {
            assert_eq!(x.norad_id, y.norad_id);
            assert_eq!(x.elements, y.elements);
            assert_eq!(x.published.epoch, y.published.epoch);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ConstellationBuilder::starlink_mini().seed(1).build();
        let b = ConstellationBuilder::starlink_mini().seed(2).build();
        let same = a
            .sats()
            .iter()
            .zip(b.sats())
            .all(|(x, y)| x.published.mean_anomaly_deg == y.published.mean_anomaly_deg);
        assert!(!same);
    }

    #[test]
    fn gen1_has_about_4200_satellites() {
        // Just the slot math — don't build (expensive in debug tests).
        let b = ConstellationBuilder::starlink_gen1();
        let total: u32 = b.shells.iter().map(|s| s.total_sats()).sum();
        assert_eq!(total, 1584 + 1584 + 720 + 348);
    }

    #[test]
    fn launch_dates_span_the_window() {
        let c = ConstellationBuilder::starlink_mini().seed(3).build();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in c.sats() {
            lo = lo.min(s.launch.date.0);
            hi = hi.max(s.launch.date.0);
        }
        let start = JulianDate::from_ymd_hms(2020, 1, 15, 0, 0, 0.0).0;
        let end = JulianDate::from_ymd_hms(2023, 1, 15, 0, 0, 0.0).0;
        assert!((lo - start).abs() < 1.0, "earliest launch {lo} vs {start}");
        assert!((hi - end).abs() < 40.0, "latest launch {hi} vs {end}");
    }

    #[test]
    fn batches_have_consistent_labels() {
        let c = ConstellationBuilder::starlink_mini().seed(3).build();
        for s in c.sats() {
            let label = s.launch.label();
            assert_eq!(label.len(), 7, "label {label}");
            assert!((2020..=2023).contains(&s.launch.year));
            assert!((1..=12).contains(&s.launch.month));
        }
    }

    #[test]
    fn zero_fit_noise_and_zero_staleness_match_truth_closely() {
        let c = ConstellationBuilder::starlink_mini()
            .seed(4)
            .staleness_hours(0.0, 0.0)
            .fit_noise(0.0)
            .build();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 3, 0, 0.0);
        for s in c.sats().iter().take(20) {
            let t = s.true_position(at).unwrap();
            let p = s.published_position(at).unwrap();
            // TLE field quantization (7-dec eccentricity, 4-dec degrees,
            // 8-dec mean motion) keeps this from being exact.
            assert!(t.distance(p) < 5.0, "diff {} km", t.distance(p));
        }
    }

    #[test]
    fn staleness_increases_published_error() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let err = |lo: f64, hi: f64| -> f64 {
            let c = ConstellationBuilder::starlink_mini()
                .seed(5)
                .staleness_hours(lo, hi)
                .fit_noise(1.0)
                .build();
            let mut total = 0.0;
            let mut n = 0;
            for s in c.sats().iter().take(60) {
                if let (Some(t), Some(p)) = (s.true_position(at), s.published_position(at)) {
                    total += t.distance(p);
                    n += 1;
                }
            }
            total / n as f64
        };
        let fresh = err(0.0, 0.5);
        let stale = err(20.0, 24.0);
        assert!(
            stale > fresh,
            "staleness should raise mean error: fresh {fresh} km vs stale {stale} km"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shell")]
    fn empty_builder_panics() {
        let _ = ConstellationBuilder::new().build();
    }

    #[test]
    fn intl_designator_format() {
        let l = LaunchBatch {
            index: 41,
            date: JulianDate::from_ymd_hms(2021, 5, 1, 0, 0, 0.0),
            year: 2021,
            month: 5,
        };
        assert_eq!(intl_designator(l), "21042A");
    }

    #[test]
    fn gauss_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..20_000).map(|_| gauss(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
