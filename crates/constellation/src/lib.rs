//! Synthetic LEO constellations.
//!
//! The paper studies the live Starlink constellation; this crate builds its
//! stand-in. A [`Constellation`] is a catalog of satellites generated from
//! Walker-delta [`Shell`]s matching Starlink's publicly filed shell
//! parameters, each satellite carrying:
//!
//! * mean orbital elements and an initialized SGP4 propagator (the *truth*
//!   used by the hidden scheduler and the network emulator),
//! * a *published* TLE whose epoch lags the truth by a configurable
//!   staleness and whose elements carry small fit noise — reproducing the
//!   CelesTrak-TLE error source the paper's identification pipeline works
//!   against (§4: "these files only indicate satellite positions every six
//!   hours"),
//! * a launch batch (year/month), so the launch-date preference analysis of
//!   §5.2 has ground truth to recover.
//!
//! [`Constellation::field_of_view`] returns every satellite above a minimum
//! angle of elevation for a terminal, with look angles and sunlit status —
//! the "available satellites" set that every analysis in §5 compares
//! against.
//!
//! [`PropagationCache`] memoizes per-epoch propagation (true snapshots and
//! published-TLE positions) behind a thread-safe read-through interface, so
//! campaign engines propagate the constellation once per slot regardless of
//! terminal count or worker-thread count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod cache;
mod catalog;
mod feed;
mod index;
mod shell;

pub use builder::ConstellationBuilder;
pub use cache::{CacheStats, PropagationCache, SparseMemo};
pub use catalog::{Constellation, LaunchBatch, Satellite, Snapshot, SnapshotEntry, VisibleSat};
pub use feed::{defect_kind, load_catalog_text, CatalogLoad};
pub use index::VisibilityIndex;
pub use shell::{Shell, WalkerSlot};
