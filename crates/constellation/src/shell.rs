//! Walker-delta shell geometry.
//!
//! A Walker delta pattern `i: t/p/f` spreads `t` satellites over `p` evenly
//! spaced orbital planes at inclination `i`, with `t/p` satellites per plane
//! and an inter-plane phasing offset of `f · 360°/t`. Starlink's shells are
//! Walker deltas; the parameters used by [`crate::ConstellationBuilder`]'s
//! presets come from SpaceX's public FCC filings.

use starsense_sgp4::wgs72;

/// One Walker-delta shell of a constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// Human-readable shell name, e.g. `"shell-1 (53.0°/550km)"`.
    pub name: String,
    /// Orbital inclination, degrees.
    pub inclination_deg: f64,
    /// Altitude above the mean equatorial radius, km.
    pub altitude_km: f64,
    /// Number of orbital planes.
    pub planes: u32,
    /// Satellites per plane.
    pub sats_per_plane: u32,
    /// Walker phasing parameter `f` (relative spacing between satellites in
    /// adjacent planes), `0 ≤ f < planes`.
    pub phasing: u32,
}

/// The orbital slot of a single satellite within a shell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerSlot {
    /// Plane index, `0..planes`.
    pub plane: u32,
    /// Slot index within the plane, `0..sats_per_plane`.
    pub slot: u32,
    /// Right ascension of the ascending node, degrees.
    pub raan_deg: f64,
    /// Mean anomaly at the pattern epoch, degrees.
    pub mean_anomaly_deg: f64,
}

impl Shell {
    /// Total number of satellites in the shell.
    pub fn total_sats(&self) -> u32 {
        self.planes * self.sats_per_plane
    }

    /// Mean motion implied by the shell altitude, revolutions per day
    /// (two-body; SGP4's Kozai correction is absorbed at propagation time).
    pub fn mean_motion_rev_per_day(&self) -> f64 {
        let a = wgs72::EARTH_RADIUS_KM + self.altitude_km;
        let n_rad_s = (wgs72::MU / (a * a * a)).sqrt();
        n_rad_s * 86_400.0 / std::f64::consts::TAU
    }

    /// Enumerates every slot of the Walker pattern.
    ///
    /// Plane `p` sits at RAAN `p·360/planes`; satellite `s` of plane `p`
    /// has mean anomaly `s·360/S + p·f·360/t` (the delta-pattern phasing).
    pub fn slots(&self) -> Vec<WalkerSlot> {
        let t = self.total_sats() as f64;
        let mut out = Vec::with_capacity(self.total_sats() as usize);
        for plane in 0..self.planes {
            let raan_deg = plane as f64 * 360.0 / self.planes as f64;
            for slot in 0..self.sats_per_plane {
                let ma = slot as f64 * 360.0 / self.sats_per_plane as f64
                    + plane as f64 * self.phasing as f64 * 360.0 / t;
                out.push(WalkerSlot {
                    plane,
                    slot,
                    raan_deg,
                    mean_anomaly_deg: ma.rem_euclid(360.0),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell_53() -> Shell {
        Shell {
            name: "test 53/550".into(),
            inclination_deg: 53.0,
            altitude_km: 550.0,
            planes: 72,
            sats_per_plane: 22,
            phasing: 39,
        }
    }

    #[test]
    fn total_and_slot_count_agree() {
        let s = shell_53();
        assert_eq!(s.total_sats(), 1584);
        assert_eq!(s.slots().len(), 1584);
    }

    #[test]
    fn mean_motion_is_about_15_rev_per_day_at_550km() {
        let n = shell_53().mean_motion_rev_per_day();
        assert!((15.0..15.2).contains(&n), "n = {n}");
    }

    #[test]
    fn planes_are_evenly_spaced_in_raan() {
        let s = Shell { planes: 8, sats_per_plane: 2, ..shell_53() };
        let slots = s.slots();
        let raans: Vec<f64> = (0..8).map(|p| slots[p * 2].raan_deg).collect();
        for (i, r) in raans.iter().enumerate() {
            assert!((r - i as f64 * 45.0).abs() < 1e-12);
        }
    }

    #[test]
    fn in_plane_spacing_is_uniform() {
        let s = Shell { planes: 4, sats_per_plane: 6, phasing: 0, ..shell_53() };
        let slots = s.slots();
        // First plane: mean anomalies 0, 60, 120, ...
        for k in 0..6 {
            assert!((slots[k].mean_anomaly_deg - k as f64 * 60.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phasing_offsets_adjacent_planes() {
        let s = Shell { planes: 4, sats_per_plane: 6, phasing: 1, ..shell_53() };
        let slots = s.slots();
        let t = 24.0;
        // Plane 1 slot 0 should be offset by 360/t = 15°.
        let plane1_first = slots.iter().find(|sl| sl.plane == 1 && sl.slot == 0).unwrap();
        assert!((plane1_first.mean_anomaly_deg - 360.0 / t).abs() < 1e-12);
    }

    #[test]
    fn all_angles_in_range() {
        for sl in shell_53().slots() {
            assert!((0.0..360.0).contains(&sl.raan_deg));
            assert!((0.0..360.0).contains(&sl.mean_anomaly_deg));
        }
    }
}
