//! Shared per-epoch propagation cache.
//!
//! A measurement campaign asks for the same instants over and over: every
//! terminal's field-of-view query hits the slot's epoch, and every
//! terminal's candidate generator hits the same 16 sample epochs inside the
//! slot. [`PropagationCache`] memoizes both the **true** catalog snapshot
//! (scheduler side) and the **published**-TLE positions (identification
//! side) per exact epoch, so the constellation is SGP4-propagated once per
//! instant no matter how many terminals — or worker threads — observe it.
//!
//! The cache is read-through and thread-safe (`RwLock` around plain maps),
//! which makes it the natural rendezvous point for the parallel campaign
//! engine: phase-A workers pre-warm slot epochs concurrently, and the
//! serial scheduler pass plus the per-terminal observation workers all hit
//! warm entries. Values are returned as `Arc`s so readers never hold a
//! lock while using a snapshot.
//!
//! Determinism: an epoch is keyed by the exact bit pattern of its Julian
//! date, and the cached value is a pure function of (catalog, epoch), so a
//! cache hit is bit-identical to recomputation and results cannot depend
//! on which thread populated an entry first.

use crate::catalog::{Constellation, Snapshot};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Hit/miss counters, for benches and capacity planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a warm entry.
    pub hits: usize,
    /// Lookups that had to propagate (a full catalog row or snapshot).
    pub misses: usize,
    /// True-snapshot entries currently cached.
    pub truth_entries: usize,
    /// Published-position entries currently cached.
    pub published_entries: usize,
    /// Single-satellite lookups answered from a warm entry (full row or
    /// sparse memo).
    pub sparse_hits: usize,
    /// Single-satellite lookups that had to propagate one satellite.
    pub sparse_misses: usize,
    /// Per-(satellite, epoch) entries currently memoized.
    pub sparse_entries: usize,
}

/// A thread-safe, read-through memo of per-epoch propagation results for
/// one [`Constellation`].
#[derive(Debug)]
pub struct PropagationCache<'a> {
    constellation: &'a Constellation,
    // Determinism audit: these maps are accessed by key only — `get`,
    // `entry().or_insert`, `len`, `clear`. Hash order is never observed,
    // so `HashMap`'s O(1) lookups are safe on the terminal-scale hot
    // path. Any future iteration over them must switch to `BTreeMap` or
    // sort the keys first (starlint D201/X103 will flag it).
    truth: RwLock<HashMap<u64, Arc<Snapshot>>>,
    published: RwLock<HashMap<u64, Arc<Vec<Option<Vec3>>>>>,
    /// Per-(epoch, satellite) published positions, for callers — like the
    /// identification track cache — that only need a pruned subset of the
    /// catalog at an epoch and should not pay for a full row.
    sparse: RwLock<HashMap<(u64, u32), Option<Vec3>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    sparse_hits: AtomicUsize,
    sparse_misses: AtomicUsize,
}

/// Locks can only be poisoned by a panicking writer; the cached values are
/// write-once and valid even then, so recover the guard instead of
/// propagating the poison.
fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<'a> PropagationCache<'a> {
    /// Creates an empty cache over `constellation`.
    pub fn new(constellation: &'a Constellation) -> PropagationCache<'a> {
        PropagationCache {
            constellation,
            truth: RwLock::new(HashMap::new()),
            published: RwLock::new(HashMap::new()),
            sparse: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            sparse_hits: AtomicUsize::new(0),
            sparse_misses: AtomicUsize::new(0),
        }
    }

    /// The catalog this cache propagates.
    pub fn constellation(&self) -> &'a Constellation {
        self.constellation
    }

    /// True-position snapshot at `at`, computed at most once per distinct
    /// epoch (bit-exact key).
    pub fn snapshot(&self, at: JulianDate) -> Arc<Snapshot> {
        let key = at.0.to_bits();
        if let Some(hit) = read_unpoisoned(&self.truth).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Propagate outside the lock: epochs are pure functions of the
        // catalog, so a racing duplicate computation is wasted work at
        // worst, never a wrong answer.
        let snap = Arc::new(self.constellation.snapshot(at));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = write_unpoisoned(&self.truth);
        Arc::clone(map.entry(key).or_insert(snap))
    }

    /// Published-TLE TEME positions of every catalog satellite at `at`
    /// (`None` where propagation fails), computed at most once per epoch.
    /// Indexed like [`Constellation::sats`].
    pub fn published_positions(&self, at: JulianDate) -> Arc<Vec<Option<Vec3>>> {
        let key = at.0.to_bits();
        if let Some(hit) = read_unpoisoned(&self.published).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let positions: Vec<Option<Vec3>> =
            self.constellation.sats().iter().map(|s| s.published_position(at)).collect();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = write_unpoisoned(&self.published);
        Arc::clone(map.entry(key).or_insert(Arc::new(positions)))
    }

    /// Published-TLE TEME position of the satellite at catalog index `si`
    /// at `at`, memoized per (satellite, epoch) pair. Bit-identical to
    /// `published_positions(at)[si]` — both are
    /// [`crate::Satellite::published_position`] verbatim — but a cold
    /// lookup propagates one satellite instead of the whole catalog, which
    /// is what the identification track cache wants for the few dozen
    /// candidates that survive its elevation prefilter. A full row already
    /// cached for `at` answers without touching the sparse memo.
    pub fn published_position_of(&self, si: usize, at: JulianDate) -> Option<Vec3> {
        let key = at.0.to_bits();
        if let Some(row) = read_unpoisoned(&self.published).get(&key) {
            self.sparse_hits.fetch_add(1, Ordering::Relaxed);
            return row[si];
        }
        let sparse_key = (key, si as u32);
        if let Some(hit) = read_unpoisoned(&self.sparse).get(&sparse_key) {
            self.sparse_hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        let pos = self.constellation.sats()[si].published_position(at);
        self.sparse_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = write_unpoisoned(&self.sparse);
        *map.entry(sparse_key).or_insert(pos)
    }

    /// Pre-propagates true snapshots for every epoch in `epochs`, fanning
    /// the work across up to `threads` scoped workers (values ≤ 1 warm the
    /// cache serially). Epochs are interleaved across workers so chunks
    /// cost the same regardless of ordering.
    pub fn prewarm(&self, epochs: &[JulianDate], threads: usize) {
        let threads = threads.max(1).min(epochs.len().max(1));
        if threads <= 1 {
            for &at in epochs {
                let _ = self.snapshot(at);
            }
            return;
        }
        std::thread::scope(|scope| {
            for worker in 0..threads {
                scope.spawn(move || {
                    for &at in epochs.iter().skip(worker).step_by(threads) {
                        let _ = self.snapshot(at);
                    }
                });
            }
        });
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        write_unpoisoned(&self.truth).clear();
        write_unpoisoned(&self.published).clear();
        write_unpoisoned(&self.sparse).clear();
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            truth_entries: read_unpoisoned(&self.truth).len(),
            published_entries: read_unpoisoned(&self.published).len(),
            sparse_hits: self.sparse_hits.load(Ordering::Relaxed),
            sparse_misses: self.sparse_misses.load(Ordering::Relaxed),
            sparse_entries: read_unpoisoned(&self.sparse).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConstellationBuilder;
    use starsense_astro::frames::Geodetic;

    fn mini() -> Constellation {
        ConstellationBuilder::starlink_mini().seed(42).build()
    }

    #[test]
    fn snapshot_through_cache_matches_direct() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
        let iowa = Geodetic::new(41.66, -91.53, 0.2);

        let direct = c.field_of_view(iowa, at, 25.0);
        let cached = c.field_of_view_from(&cache.snapshot(at), iowa, 25.0);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(&cached) {
            assert_eq!(a.norad_id, b.norad_id);
            assert_eq!(a.look, b.look);
            assert_eq!(a.sunlit, b.sunlit);
        }
    }

    #[test]
    fn repeat_lookups_hit() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
        let first = cache.snapshot(at);
        let second = cache.snapshot(at);
        assert!(Arc::ptr_eq(&first, &second), "same epoch must share one snapshot");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.truth_entries), (1, 1, 1));
    }

    #[test]
    fn published_positions_match_satellite_calls() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let cached = cache.published_positions(at);
        assert_eq!(cached.len(), c.len());
        for (sat, pos) in c.sats().iter().zip(cached.iter()) {
            assert_eq!(*pos, sat.published_position(at));
        }
        // Second lookup is a hit.
        let again = cache.published_positions(at);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn distinct_epochs_get_distinct_entries() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let t1 = t0.plus_seconds(15.0);
        let _ = cache.snapshot(t0);
        let _ = cache.snapshot(t1);
        assert_eq!(cache.stats().truth_entries, 2);
    }

    #[test]
    fn prewarm_fills_every_epoch_in_parallel() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let epochs: Vec<JulianDate> = (0..12).map(|k| t0.plus_seconds(15.0 * k as f64)).collect();
        cache.prewarm(&epochs, 4);
        assert_eq!(cache.stats().truth_entries, 12);
        // Everything is now warm: lookups do not miss again.
        let misses_before = cache.stats().misses;
        for &at in &epochs {
            let _ = cache.snapshot(at);
        }
        assert_eq!(cache.stats().misses, misses_before);
    }

    #[test]
    fn clear_empties_the_cache() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let _ = cache.snapshot(at);
        let _ = cache.published_positions(at);
        let _ = cache.published_position_of(0, at.plus_seconds(1.0));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.truth_entries, s.published_entries, s.sparse_entries), (0, 0, 0));
    }

    #[test]
    fn sparse_lookup_matches_direct_propagation_and_memoizes() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        for si in [0usize, 7, c.len() - 1] {
            assert_eq!(cache.published_position_of(si, at), c.sats()[si].published_position(at));
        }
        let s = cache.stats();
        assert_eq!((s.sparse_hits, s.sparse_misses, s.sparse_entries), (0, 3, 3));
        // Re-asking is a sparse hit and adds no entries.
        let _ = cache.published_position_of(7, at);
        let s = cache.stats();
        assert_eq!((s.sparse_hits, s.sparse_misses, s.sparse_entries), (1, 3, 3));
        // Full-row counters are untouched by sparse traffic.
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn warm_full_row_answers_sparse_lookups_without_new_entries() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let row = cache.published_positions(at);
        for si in 0..c.len() {
            assert_eq!(cache.published_position_of(si, at), row[si]);
        }
        let s = cache.stats();
        assert_eq!((s.sparse_hits, s.sparse_misses, s.sparse_entries), (c.len(), 0, 0));
    }

    #[test]
    fn parallel_readers_share_one_propagation_per_epoch() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let warm = cache.snapshot(at);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let snap = cache.snapshot(at);
                    assert_eq!(snap.len(), cache.constellation().len());
                });
            }
        });
        assert_eq!(cache.stats().truth_entries, 1);
        assert!(Arc::ptr_eq(&warm, &cache.snapshot(at)));
    }
}
