//! Two-tier per-epoch propagation cache.
//!
//! A measurement campaign asks for the same instants over and over: every
//! terminal's field-of-view query hits the slot's epoch, and every
//! terminal's candidate generator hits the same 16 sample epochs inside the
//! slot. [`PropagationCache`] memoizes both the **true** catalog snapshot
//! (scheduler side) and the **published**-TLE positions (identification
//! side) per exact epoch, so the constellation is SGP4-propagated once per
//! instant no matter how many terminals — or worker threads — observe it.
//!
//! The cache has two tiers:
//!
//! 1. **Prepared table** — an immutable, sorted epoch table built once by
//!    [`PropagationCache::prepare`] (a single batched, optionally parallel
//!    fill through the struct-of-arrays SGP4 path). Lookups against it are
//!    a binary search over a frozen `Vec` behind a `OnceLock`: **no lock,
//!    no write, no contention** on the hot read path, which is what lets
//!    the sharded campaign workers scale with cores. The campaign engine
//!    prepares every slot epoch (and, in identified mode, every slot
//!    boundary epoch) up front.
//! 2. **Fallback maps** — `RwLock<HashMap>` read-through maps for epochs
//!    nobody prepared (ad-hoc queries, benches, misaligned slots). This is
//!    the cold path; correctness never depends on reaching it.
//!
//! Per-(satellite, epoch) sparse lookups moved out of the shared cache
//! entirely: [`SparseMemo`] is a plain single-owner memo a caller (one
//! identification track cache, one shard worker) holds privately, so sparse
//! traffic never crosses threads and never takes a lock.
//!
//! Determinism: an epoch is keyed by the exact bit pattern of its Julian
//! date, and the cached value is a pure function of (catalog, epoch), so a
//! cache hit is bit-identical to recomputation and results cannot depend
//! on which thread populated an entry first — nor on whether an epoch was
//! served by the prepared table, a fallback map, or a sparse memo.

use crate::catalog::{Constellation, Snapshot};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Hit/miss counters, for benches and capacity planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a warm entry (prepared table or fallback map).
    pub hits: usize,
    /// Lookups that had to propagate (a full catalog row or snapshot).
    pub misses: usize,
    /// True-snapshot entries currently cached (prepared + fallback).
    pub truth_entries: usize,
    /// Published-position entries currently cached (prepared + fallback).
    pub published_entries: usize,
}

/// The immutable tier-1 epoch table: sorted epoch keys with their
/// propagated rows, built once and never mutated, so readers need no
/// synchronization beyond the `OnceLock` publication.
#[derive(Debug, Default)]
struct PreparedEpochs {
    truth_keys: Vec<u64>,
    truth_rows: Vec<Arc<Snapshot>>,
    published_keys: Vec<u64>,
    published_rows: Vec<Arc<Vec<Option<Vec3>>>>,
}

/// A thread-safe, read-through memo of per-epoch propagation results for
/// one [`Constellation`].
#[derive(Debug)]
pub struct PropagationCache<'a> {
    constellation: &'a Constellation,
    /// Tier 1: immutable prepared epoch table (see module docs).
    prepared: OnceLock<PreparedEpochs>,
    // Tier 2 fallback. Determinism audit: these maps are accessed by key
    // only — `get`, `entry().or_insert`, `len`, `clear`. Hash order is
    // never observed, so `HashMap`'s O(1) lookups are safe on the
    // terminal-scale hot path. Any future iteration over them must switch
    // to `BTreeMap` or sort the keys first (starlint D201/X103 will flag
    // it).
    truth: RwLock<HashMap<u64, Arc<Snapshot>>>,
    published: RwLock<HashMap<u64, Arc<Vec<Option<Vec3>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Locks can only be poisoned by a panicking writer; the cached values are
/// write-once and valid even then, so recover the guard instead of
/// propagating the poison.
fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sorted, deduplicated bit-pattern keys for a list of epochs.
fn sorted_keys(epochs: &[JulianDate]) -> Vec<u64> {
    let mut keys: Vec<u64> = epochs.iter().map(|at| at.0.to_bits()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Computes `rows[i] = make(keys[i])` across up to `threads` scoped
/// workers. Workers take interleaved indices and return `(index, row)`
/// pairs that are merged by index, so the output order — and therefore
/// everything downstream — is independent of scheduling.
fn fill_rows<R: Send>(
    keys: &[u64],
    threads: usize,
    make: impl Fn(JulianDate) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(keys.len().max(1));
    if threads <= 1 {
        return keys.iter().map(|&k| make(JulianDate(f64::from_bits(k)))).collect();
    }
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(keys.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let make = &make;
            handles.push(scope.spawn(move || {
                keys.iter()
                    .enumerate()
                    .skip(worker)
                    .step_by(threads)
                    .map(|(i, &k)| (i, make(JulianDate(f64::from_bits(k)))))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            let part = handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            indexed.extend(part);
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

impl<'a> PropagationCache<'a> {
    /// Creates an empty cache over `constellation`.
    pub fn new(constellation: &'a Constellation) -> PropagationCache<'a> {
        PropagationCache {
            constellation,
            prepared: OnceLock::new(),
            truth: RwLock::new(HashMap::new()),
            published: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The catalog this cache propagates.
    pub fn constellation(&self) -> &'a Constellation {
        self.constellation
    }

    /// Builds the immutable tier-1 epoch table: true snapshots for every
    /// epoch in `truth_epochs` and published-TLE rows for every epoch in
    /// `published_epochs`, filled by one batched pass fanned across up to
    /// `threads` scoped workers (≤ 1 fills serially).
    ///
    /// Returns `false` (and changes nothing) if the table was already
    /// built — the table is write-once by design, so callers prepare every
    /// epoch they need in one call before the hot loops start. Epochs are
    /// deduplicated; later lookups of a prepared epoch touch no lock.
    pub fn prepare(
        &self,
        truth_epochs: &[JulianDate],
        published_epochs: &[JulianDate],
        threads: usize,
    ) -> bool {
        if self.prepared.get().is_some() {
            return false;
        }
        let truth_keys = sorted_keys(truth_epochs);
        let published_keys = sorted_keys(published_epochs);
        let truth_rows =
            fill_rows(&truth_keys, threads, |at| Arc::new(self.constellation.snapshot(at)));
        let published_rows = fill_rows(&published_keys, threads, |at| {
            Arc::new(self.constellation.published_row(at))
        });
        let table = PreparedEpochs { truth_keys, truth_rows, published_keys, published_rows };
        self.prepared.set(table).is_ok()
    }

    /// Tier-1 lookup of a prepared true snapshot (no locks).
    fn prepared_truth(&self, key: u64) -> Option<&Arc<Snapshot>> {
        let p = self.prepared.get()?;
        let i = p.truth_keys.binary_search(&key).ok()?;
        Some(&p.truth_rows[i])
    }

    /// Tier-1 lookup of a prepared published row (no locks).
    fn prepared_published(&self, key: u64) -> Option<&Arc<Vec<Option<Vec3>>>> {
        let p = self.prepared.get()?;
        let i = p.published_keys.binary_search(&key).ok()?;
        Some(&p.published_rows[i])
    }

    /// True-position snapshot at `at`, computed at most once per distinct
    /// epoch (bit-exact key). Prepared epochs are answered lock-free.
    pub fn snapshot(&self, at: JulianDate) -> Arc<Snapshot> {
        let key = at.0.to_bits();
        if let Some(hit) = self.prepared_truth(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        if let Some(hit) = read_unpoisoned(&self.truth).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Propagate outside the lock: epochs are pure functions of the
        // catalog, so a racing duplicate computation is wasted work at
        // worst, never a wrong answer.
        let snap = Arc::new(self.constellation.snapshot(at));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = write_unpoisoned(&self.truth);
        Arc::clone(map.entry(key).or_insert(snap))
    }

    /// Published-TLE TEME positions of every catalog satellite at `at`
    /// (`None` where propagation fails), computed at most once per epoch.
    /// Indexed like [`Constellation::sats`]. Prepared epochs are answered
    /// lock-free.
    pub fn published_positions(&self, at: JulianDate) -> Arc<Vec<Option<Vec3>>> {
        let key = at.0.to_bits();
        if let Some(hit) = self.prepared_published(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        if let Some(hit) = read_unpoisoned(&self.published).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let positions = self.constellation.published_row(at);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = write_unpoisoned(&self.published);
        Arc::clone(map.entry(key).or_insert(Arc::new(positions)))
    }

    /// Pre-propagates true snapshots for every epoch in `epochs`, fanning
    /// the work across up to `threads` scoped workers (values ≤ 1 warm the
    /// cache serially). Epochs are interleaved across workers so chunks
    /// cost the same regardless of ordering.
    ///
    /// This fills the tier-2 fallback maps; prefer
    /// [`PropagationCache::prepare`] when the epoch set is known up front,
    /// which makes later reads lock-free.
    pub fn prewarm(&self, epochs: &[JulianDate], threads: usize) {
        let threads = threads.max(1).min(epochs.len().max(1));
        if threads <= 1 {
            for &at in epochs {
                let _ = self.snapshot(at);
            }
            return;
        }
        std::thread::scope(|scope| {
            for worker in 0..threads {
                scope.spawn(move || {
                    for &at in epochs.iter().skip(worker).step_by(threads) {
                        let _ = self.snapshot(at);
                    }
                });
            }
        });
    }

    /// Drops every cached fallback entry (counters and the immutable
    /// prepared table are kept).
    pub fn clear(&self) {
        write_unpoisoned(&self.truth).clear();
        write_unpoisoned(&self.published).clear();
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let (prepared_truth, prepared_published) = match self.prepared.get() {
            Some(p) => (p.truth_keys.len(), p.published_keys.len()),
            None => (0, 0),
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            truth_entries: prepared_truth + read_unpoisoned(&self.truth).len(),
            published_entries: prepared_published + read_unpoisoned(&self.published).len(),
        }
    }
}

/// A single-owner per-(satellite, epoch) published-position memo.
///
/// This is the shard-local tier of the cache design: each consumer that
/// needs pruned single-satellite lookups — one identification track cache,
/// inside one campaign shard worker — owns its own `SparseMemo`. The memo
/// never crosses threads, so lookups take no lock and sparse traffic from
/// one shard cannot contend with another. Values are bit-identical to
/// `cache.published_positions(at)[si]` regardless of which tier answers.
#[derive(Debug, Default)]
pub struct SparseMemo {
    map: HashMap<(u64, u32), Option<Vec3>>,
    hits: usize,
    misses: usize,
}

impl SparseMemo {
    /// Creates an empty memo.
    pub fn new() -> SparseMemo {
        SparseMemo::default()
    }

    /// Published-TLE TEME position of the satellite at catalog index `si`
    /// at `at`. A prepared full row answers lock-free; otherwise the local
    /// memo answers, then the shared fallback row map, and only then is
    /// one satellite propagated (and memoized locally).
    pub fn published_position_of(
        &mut self,
        cache: &PropagationCache<'_>,
        si: usize,
        at: JulianDate,
    ) -> Option<Vec3> {
        let key = at.0.to_bits();
        if let Some(row) = cache.prepared_published(key) {
            self.hits += 1;
            return row[si];
        }
        let sparse_key = (key, si as u32);
        if let Some(hit) = self.map.get(&sparse_key) {
            self.hits += 1;
            return *hit;
        }
        if let Some(row) = read_unpoisoned(&cache.published).get(&key) {
            self.hits += 1;
            return row[si];
        }
        let pos = cache.constellation().sats()[si].published_position(at);
        self.misses += 1;
        *self.map.entry(sparse_key).or_insert(pos)
    }

    /// Lookups answered without propagating (any tier).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that propagated one satellite.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Entries currently memoized locally.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo holds no local entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConstellationBuilder;
    use starsense_astro::frames::Geodetic;

    fn mini() -> Constellation {
        ConstellationBuilder::starlink_mini().seed(42).build()
    }

    #[test]
    fn snapshot_through_cache_matches_direct() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
        let iowa = Geodetic::new(41.66, -91.53, 0.2);

        let direct = c.field_of_view(iowa, at, 25.0);
        let cached = c.field_of_view_from(&cache.snapshot(at), iowa, 25.0);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(&cached) {
            assert_eq!(a.norad_id, b.norad_id);
            assert_eq!(a.look, b.look);
            assert_eq!(a.sunlit, b.sunlit);
        }
    }

    #[test]
    fn repeat_lookups_hit() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0);
        let first = cache.snapshot(at);
        let second = cache.snapshot(at);
        assert!(Arc::ptr_eq(&first, &second), "same epoch must share one snapshot");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.truth_entries), (1, 1, 1));
    }

    #[test]
    fn published_positions_match_satellite_calls() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let cached = cache.published_positions(at);
        assert_eq!(cached.len(), c.len());
        for (sat, pos) in c.sats().iter().zip(cached.iter()) {
            assert_eq!(*pos, sat.published_position(at));
        }
        // Second lookup is a hit.
        let again = cache.published_positions(at);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn distinct_epochs_get_distinct_entries() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let t1 = t0.plus_seconds(15.0);
        let _ = cache.snapshot(t0);
        let _ = cache.snapshot(t1);
        assert_eq!(cache.stats().truth_entries, 2);
    }

    #[test]
    fn prepared_epochs_answer_without_touching_fallback_maps() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let truth: Vec<JulianDate> = (0..6).map(|k| t0.plus_seconds(15.0 * k as f64)).collect();
        let published: Vec<JulianDate> = (0..3).map(|k| t0.plus_seconds(5.0 * k as f64)).collect();
        assert!(cache.prepare(&truth, &published, 3));

        let s = cache.stats();
        assert_eq!((s.truth_entries, s.published_entries), (6, 3));

        for &at in &truth {
            let snap = cache.snapshot(at);
            assert_eq!(snap.len(), c.len());
        }
        for &at in &published {
            let row = cache.published_positions(at);
            for (sat, pos) in c.sats().iter().zip(row.iter()) {
                assert_eq!(*pos, sat.published_position(at));
            }
        }
        let s = cache.stats();
        // Every lookup above was a prepared hit: no misses, and the
        // fallback maps stayed empty.
        assert_eq!(s.misses, 0);
        assert_eq!(read_unpoisoned(&cache.truth).len(), 0);
        assert_eq!(read_unpoisoned(&cache.published).len(), 0);
    }

    #[test]
    fn prepare_is_write_once() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        assert!(cache.prepare(&[t0], &[], 1));
        assert!(!cache.prepare(&[t0.plus_seconds(15.0)], &[], 1));
        // The second call changed nothing: the extra epoch is a miss.
        let _ = cache.snapshot(t0.plus_seconds(15.0));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn prepare_deduplicates_epochs_and_matches_direct_propagation() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let epochs = [t0, t0.plus_seconds(15.0), t0, t0.plus_seconds(15.0)];
        assert!(cache.prepare(&epochs, &epochs, 2));
        let s = cache.stats();
        assert_eq!((s.truth_entries, s.published_entries), (2, 2));

        // Prepared rows are bit-identical to direct propagation.
        let direct = c.snapshot(t0);
        let prepared = cache.snapshot(t0);
        assert_eq!(direct.len(), prepared.len());
        for (a, b) in direct.entries().iter().zip(prepared.entries()) {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.teme.x.to_bits(), b.teme.x.to_bits());
                    assert_eq!(a.ecef.y.to_bits(), b.ecef.y.to_bits());
                    assert_eq!(a.sunlit, b.sunlit);
                }
                other => panic!("entry mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn prewarm_fills_every_epoch_in_parallel() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let epochs: Vec<JulianDate> = (0..12).map(|k| t0.plus_seconds(15.0 * k as f64)).collect();
        cache.prewarm(&epochs, 4);
        assert_eq!(cache.stats().truth_entries, 12);
        // Everything is now warm: lookups do not miss again.
        let misses_before = cache.stats().misses;
        for &at in &epochs {
            let _ = cache.snapshot(at);
        }
        assert_eq!(cache.stats().misses, misses_before);
    }

    #[test]
    fn clear_empties_the_fallback_maps_but_keeps_prepared_entries() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let prepared_at = at.plus_seconds(30.0);
        assert!(cache.prepare(&[prepared_at], &[], 1));
        let _ = cache.snapshot(at);
        let _ = cache.published_positions(at);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.truth_entries, s.published_entries), (1, 0));
        // The prepared epoch still answers without a miss.
        let misses = cache.stats().misses;
        let _ = cache.snapshot(prepared_at);
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn sparse_memo_matches_direct_propagation_and_memoizes() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let mut memo = SparseMemo::new();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        for si in [0usize, 7, c.len() - 1] {
            assert_eq!(
                memo.published_position_of(&cache, si, at),
                c.sats()[si].published_position(at)
            );
        }
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (0, 3, 3));
        // Re-asking is a memo hit and adds no entries.
        let _ = memo.published_position_of(&cache, 7, at);
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (1, 3, 3));
        // Full-row counters are untouched by sparse traffic.
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn warm_full_row_answers_sparse_lookups_without_new_entries() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let mut memo = SparseMemo::new();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let row = cache.published_positions(at);
        for si in 0..c.len() {
            assert_eq!(memo.published_position_of(&cache, si, at), row[si]);
        }
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (c.len(), 0, 0));
        assert!(memo.is_empty());
    }

    #[test]
    fn prepared_row_answers_sparse_lookups_lock_free() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        assert!(cache.prepare(&[], &[at], 1));
        let mut memo = SparseMemo::new();
        for si in 0..c.len() {
            assert_eq!(
                memo.published_position_of(&cache, si, at),
                c.sats()[si].published_position(at)
            );
        }
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (c.len(), 0, 0));
    }

    #[test]
    fn parallel_readers_share_one_propagation_per_epoch() {
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let warm = cache.snapshot(at);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let snap = cache.snapshot(at);
                    assert_eq!(snap.len(), cache.constellation().len());
                });
            }
        });
        assert_eq!(cache.stats().truth_entries, 1);
        assert!(Arc::ptr_eq(&warm, &cache.snapshot(at)));
    }

    #[test]
    fn poisoned_writer_does_not_wedge_readers() {
        // A panicking thread holding the write lock poisons it; the
        // `read_unpoisoned`/`write_unpoisoned` helpers must recover, so a
        // campaign survives a worker panic without deadlocking or
        // propagating the poison to unrelated readers.
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let _ = cache.snapshot(at);

        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.truth.write().expect("first writer sees no poison");
                    panic!("poison the truth map while holding the write lock");
                })
                .join()
        });
        assert!(result.is_err(), "the writer thread must have panicked");
        assert!(cache.truth.is_poisoned(), "the panic must actually poison the lock");

        // Reads (warm and cold) and writes still work.
        let warm = cache.snapshot(at);
        assert_eq!(warm.len(), c.len());
        let cold = cache.snapshot(at.plus_seconds(15.0));
        assert_eq!(cold.len(), c.len());
        assert_eq!(cache.stats().truth_entries, 2);
        cache.clear();
        assert_eq!(cache.stats().truth_entries, 0);
    }

    #[test]
    fn poisoned_published_map_recovers_bit_identically() {
        // Same recovery contract for the published-TLE fallback map, with
        // the stronger assertion the resumable engine depends on: values
        // read through a poisoned lock are bit-identical to a fresh
        // cache's, because the entries are write-once pure functions of
        // the catalog.
        let c = mini();
        let cache = PropagationCache::new(&c);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let _ = cache.published_positions(at);

        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.published.write().expect("first writer sees no poison");
                    panic!("poison the published map while holding the write lock");
                })
                .join()
        });
        assert!(result.is_err(), "the writer thread must have panicked");
        assert!(cache.published.is_poisoned(), "the panic must actually poison the lock");

        let later = at.plus_seconds(15.0);
        let poisoned_warm = cache.published_positions(at);
        let poisoned_cold = cache.published_positions(later);

        let fresh = PropagationCache::new(&c);
        for (a, b) in [
            (&poisoned_warm, &fresh.published_positions(at)),
            (&poisoned_cold, &fresh.published_positions(later)),
        ] {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    (Some(p), Some(q)) => {
                        assert_eq!(p.x.to_bits(), q.x.to_bits());
                        assert_eq!(p.y.to_bits(), q.y.to_bits());
                        assert_eq!(p.z.to_bits(), q.z.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("propagation success must not depend on lock state"),
                }
            }
        }
    }
}
