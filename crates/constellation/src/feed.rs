//! Resilient loading of external TLE feeds.
//!
//! The paper's methodology starts from CelesTrak catalog downloads, and
//! real feeds arrive with defects: flipped checksum digits, truncated
//! lines, and fields that parse but are semantically garbage. A strict
//! parse (`Tle::parse_catalog`) aborts on the first defect; this module
//! instead keeps every usable record, validates that each one actually
//! initializes an SGP4 propagator, and reports exactly what was dropped
//! and why — so a measurement campaign degrades to a smaller candidate
//! catalog instead of failing outright.

use starsense_sgp4::{CatalogDefect, Sgp4, Sgp4Error, Tle, TleError};

/// Outcome of resiliently loading a (possibly corrupted) TLE feed.
#[derive(Debug, Clone)]
pub struct CatalogLoad {
    /// Records that parsed cleanly *and* initialize an SGP4 propagator.
    pub usable: Vec<Tle>,
    /// Records rejected at the wire-format level (checksum, truncation,
    /// non-finite fields, …).
    pub defects: Vec<CatalogDefect>,
    /// Records that parsed but whose elements SGP4 refuses (decayed,
    /// deep-space, unphysical), keyed by catalog number.
    pub rejected: Vec<(u32, Sgp4Error)>,
}

impl CatalogLoad {
    /// Total records the feed appeared to contain.
    pub fn total(&self) -> usize {
        self.usable.len() + self.defects.len() + self.rejected.len()
    }

    /// Fraction of records that survived, in `[0, 1]`; 1.0 for an empty
    /// feed (nothing was lost).
    pub fn usable_rate(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.usable.len() as f64 / self.total() as f64
        }
    }

    /// Whether the feed loaded without losing anything.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty() && self.rejected.is_empty()
    }
}

/// Loads a TLE feed, skipping (and reporting) defective records instead
/// of failing the whole load. Each surviving record is additionally
/// validated by constructing its SGP4 propagator, so every entry in
/// `usable` is guaranteed propagatable.
pub fn load_catalog_text(text: &str) -> CatalogLoad {
    let (parsed, defects) = Tle::parse_catalog_lossy(text);
    let mut usable = Vec::with_capacity(parsed.len());
    let mut rejected = Vec::new();
    for tle in parsed {
        match Sgp4::new(&tle.elements()) {
            Ok(_) => usable.push(tle),
            Err(e) => rejected.push((tle.norad_id, e)),
        }
    }
    CatalogLoad { usable, defects, rejected }
}

/// Convenience predicate: whether a defect list contains a given error
/// kind (ignoring payload), used by degradation reports to break down
/// feed quality.
pub fn defect_kind(error: &TleError) -> &'static str {
    match error {
        TleError::LineTooShort { .. } => "line-too-short",
        TleError::BadLineNumber { .. } => "bad-line-number",
        TleError::BadChecksum { .. } => "bad-checksum",
        TleError::CatalogMismatch => "catalog-mismatch",
        TleError::BadField { .. } => "bad-field",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1: &str = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
    const L2: &str = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

    #[test]
    fn clean_feed_loads_fully() {
        let text = format!("TEST\n{L1}\n{L2}\n");
        let load = load_catalog_text(&text);
        assert!(load.is_clean());
        assert_eq!(load.usable.len(), 1);
        assert_eq!(load.total(), 1);
        assert_eq!(load.usable_rate(), 1.0);
    }

    #[test]
    fn empty_feed_is_clean() {
        let load = load_catalog_text("");
        assert!(load.is_clean());
        assert_eq!(load.usable_rate(), 1.0);
    }

    #[test]
    fn wire_defects_are_skipped_and_reported() {
        let mut bad = L1.to_string();
        bad.replace_range(68..69, "0");
        let text = format!("GOOD\n{L1}\n{L2}\nBAD\n{bad}\n{L2}\n");
        let load = load_catalog_text(&text);
        assert_eq!(load.usable.len(), 1);
        assert_eq!(load.defects.len(), 1);
        assert_eq!(defect_kind(&load.defects[0].error), "bad-checksum");
        assert!(load.usable_rate() > 0.49 && load.usable_rate() < 0.51);
    }

    #[test]
    fn unpropagatable_elements_are_rejected_not_kept() {
        // A mean motion of 2 rev/day is a deep-space orbit; SGP4's
        // near-earth branch refuses it, and the loader must not hand it
        // to callers as usable.
        let mut tle = Tle::parse_lines(L1, L2).expect("reference TLE parses");
        tle.mean_motion_rev_day = 2.0;
        let (l1, l2) = tle.format_lines();
        let text = format!("DEEP\n{l1}\n{l2}\nGOOD\n{L1}\n{L2}\n");
        let load = load_catalog_text(&text);
        assert_eq!(load.usable.len(), 1);
        assert_eq!(load.rejected.len(), 1);
        assert_eq!(load.rejected[0].0, 5);
        assert!(!load.is_clean());
    }
}
