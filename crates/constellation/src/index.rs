//! Spatial visibility index over one snapshot.
//!
//! `field_of_view_from` answers "which satellites sit above this
//! terminal's elevation cutoff" with a linear scan: one `look_angles`
//! evaluation per catalog satellite per terminal. That is fine for four
//! terminals and ruinous for hundreds — the scan is O(sats × terminals)
//! per slot while the true answer only ever involves the few dozen
//! satellites whose sub-satellite points fall inside the terminal's
//! visibility cap.
//!
//! [`VisibilityIndex`] buckets the snapshot's satellites by the geocentric
//! latitude/longitude of their position directions on a fixed grid. A
//! query walks only the grid cells that can intersect the observer's
//! visibility cap, whose angular radius follows from the elevation cutoff
//! and the snapshot's largest satellite geocentric radius:
//!
//! ```text
//! ψ_max = acos((R_obs / R_sat_max) · cos e) − e
//! ```
//!
//! (the classical LEO ground-range bound, widened by a fixed margin for
//! the geodetic-vs-geocentric zenith deflection, which never exceeds
//! 0.20° on WGS-84). The candidate set is therefore a **provable
//! superset** of the satellites above the cutoff: the exact elevation
//! test still runs on every candidate, so routing a field-of-view query
//! through the index is bit-identical to the linear scan — the property
//! tests in this crate hold candidate sets and full query results to that
//! contract across random epochs, cutoffs, and observer grids.
//!
//! Row/column coverage of the cap is conservative by construction: per
//! grid row the longitude half-width is bounded with the haversine
//! identity, upper-bounding the numerator (closest latitude of the row to
//! the observer) and lower-bounding the denominator (largest |latitude|
//! edge of the row) independently.

use crate::catalog::Snapshot;
use starsense_astro::frames::{geodetic_to_ecef, Geodetic};
use starsense_astro::vec3::Vec3;

/// Margin (degrees) added to the elevation cutoff before deriving the cap
/// radius, covering the worst-case angle between geodetic and geocentric
/// zenith on WGS-84 (≈ 0.192° at 45° latitude) with slack to spare.
const ZENITH_DEFLECTION_MARGIN_DEG: f64 = 0.25;

/// Extra cap-radius guard (degrees) absorbing floating-point rounding in
/// the bound itself; the cell-granular coverage adds far more slack than
/// this on top.
const CAP_RADIUS_GUARD_DEG: f64 = 0.02;

/// Cap radius (degrees) beyond which a query degrades to scanning every
/// satellite: the bucket walk would visit most of the grid anyway.
const FULL_SCAN_CAP_DEG: f64 = 60.0;

/// Grid cell size is derived from the ground-range bound at the standard
/// 25° Starlink cutoff and clamped into this range (degrees).
const MIN_CELL_DEG: f64 = 1.5;
const MAX_CELL_DEG: f64 = 8.0;

/// A lat/lon bucket grid over the satellites of one [`Snapshot`],
/// answering conservative "who can possibly be above this cutoff"
/// queries in time proportional to the visibility cap, not the catalog.
#[derive(Debug, Clone)]
pub struct VisibilityIndex {
    /// Cell size, degrees (same for latitude rows and longitude columns).
    cell_deg: f64,
    /// Number of latitude rows (covering −90°…90°).
    n_lat: usize,
    /// Number of longitude columns (covering −180°…180°).
    n_lon: usize,
    /// CSR offsets: bucket `b` holds `entries[bucket_start[b]..bucket_start[b + 1]]`.
    bucket_start: Vec<u32>,
    /// Catalog indices, bucket-major; within a bucket, ascending (catalog
    /// order), which the counting sort below preserves for free.
    entries: Vec<u32>,
    /// Largest geocentric radius among present satellites, km.
    max_radius_km: f64,
    /// Total catalog length (present or not), for full-scan fallbacks.
    catalog_len: usize,
}

/// Geocentric direction angles (degrees) of an ECEF position: latitude
/// from the equatorial plane, longitude from the +X meridian. This is the
/// *geocentric* (spherical) latitude — the angular distance between two
/// such directions is exactly the angle between the position vectors,
/// which is what the cap bound speaks about.
fn direction_deg(r: Vec3) -> (f64, f64) {
    let norm = r.norm();
    let lat = if norm > 0.0 { (r.z / norm).asin().to_degrees() } else { 0.0 };
    let lon = r.y.atan2(r.x).to_degrees();
    (lat, lon)
}

/// Haversine of an angle in radians.
fn hav(x: f64) -> f64 {
    let s = (x / 2.0).sin();
    s * s
}

/// The grid bucket an ECEF direction falls into — the one bucketing rule
/// shared by [`VisibilityIndex::build`] and [`VisibilityIndex::cell_key`],
/// so cohort grouping by cell key agrees with how satellites were indexed.
fn bucket_index(cell_deg: f64, n_lat: usize, n_lon: usize, ecef: Vec3) -> usize {
    let (lat, lon) = direction_deg(ecef);
    let row = (((lat + 90.0) / cell_deg) as usize).min(n_lat - 1);
    let col = (((lon + 180.0) / cell_deg) as usize).min(n_lon - 1);
    row * n_lon + col
}

impl VisibilityIndex {
    /// Builds the index for `snapshot`, sizing the grid from the
    /// ground-range bound at the standard 25° cutoff. Satellites without a
    /// snapshot entry (unlaunched or decayed) are not indexed — the linear
    /// scan skips them too.
    pub fn build(snapshot: &Snapshot) -> VisibilityIndex {
        let entries_in = snapshot.entries();
        let max_radius_km =
            entries_in.iter().flatten().map(|e| e.ecef.norm()).fold(0.0f64, f64::max);

        // Cell size from the 25° ground-range bound: half the cap radius,
        // clamped. A degenerate snapshot (no satellites above the Earth's
        // surface) gets the coarsest grid; every query then falls back to
        // the full scan anyway.
        let cell_deg = if max_radius_km > starsense_astro::EARTH_RADIUS_KM {
            let e = 25f64.to_radians();
            let cap = ((starsense_astro::EARTH_RADIUS_KM / max_radius_km) * e.cos()).acos() - e;
            (cap.to_degrees() / 2.0).clamp(MIN_CELL_DEG, MAX_CELL_DEG)
        } else {
            MAX_CELL_DEG
        };

        let n_lat = (180.0 / cell_deg).ceil() as usize;
        let n_lon = (360.0 / cell_deg).ceil() as usize;
        let n_buckets = n_lat * n_lon;

        // Counting sort into CSR: one pass to size buckets, one to fill.
        // Filling in catalog order keeps every bucket's entries ascending,
        // so queries can merge buckets and sort cheaply.
        let bucket_of = |ecef: Vec3| -> usize { bucket_index(cell_deg, n_lat, n_lon, ecef) };
        let mut counts = vec![0u32; n_buckets + 1];
        for entry in entries_in.iter().flatten() {
            counts[bucket_of(entry.ecef) + 1] += 1;
        }
        for b in 0..n_buckets {
            counts[b + 1] += counts[b];
        }
        let mut entries = vec![0u32; counts[n_buckets] as usize];
        let mut cursor = counts.clone();
        for (si, entry) in entries_in.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let b = bucket_of(entry.ecef);
            entries[cursor[b] as usize] = si as u32;
            cursor[b] += 1;
        }

        VisibilityIndex {
            cell_deg,
            n_lat,
            n_lon,
            bucket_start: counts,
            entries,
            max_radius_km,
            catalog_len: entries_in.len(),
        }
    }

    /// The angular radius (degrees) of the visibility cap for an observer
    /// of geocentric radius `r_obs_km` and elevation cutoff
    /// `min_elevation_deg`, or `None` when the bound itself degenerates
    /// (observer at or above the constellation's top shell). The returned
    /// radius already carries the zenith-deflection and rounding margins;
    /// callers decide whether it is still narrow enough to beat a full
    /// scan (see [`FULL_SCAN_CAP_DEG`]).
    fn cap_radius_deg(&self, r_obs_km: f64, min_elevation_deg: f64) -> Option<f64> {
        if self.max_radius_km <= r_obs_km {
            return None;
        }
        let e = (min_elevation_deg - ZENITH_DEFLECTION_MARGIN_DEG).to_radians();
        let arg = ((r_obs_km / self.max_radius_km) * e.cos()).clamp(-1.0, 1.0);
        Some((arg.acos() - e).to_degrees() + CAP_RADIUS_GUARD_DEG)
    }

    /// Cosine of the visibility-cap radius for an observer of geocentric
    /// radius `r_obs_km` — the per-member prefilter threshold of the
    /// cohort fast path. A satellite whose geocentric direction makes an
    /// angle larger than the cap with the observer's direction is provably
    /// below the cutoff (same ψ_max bound and margins the grid walk uses),
    /// so testing `dot(obs_dir, sat_dir) ≥ cap_cos` before the exact
    /// elevation test can only discard satellites the exact test would
    /// reject anyway. `None` when the bound degenerates (no prefiltering).
    pub fn cap_cos(&self, r_obs_km: f64, min_elevation_deg: f64) -> Option<f64> {
        self.cap_radius_deg(r_obs_km, min_elevation_deg).map(|cap| cap.to_radians().cos())
    }

    /// The grid cell an ECEF direction falls into — exposed so cohort
    /// schedulers can group observers by the index's own cells. Grouping
    /// is a pure function of the position (and this snapshot's grid), so
    /// any cohort built from it is invariant under observer input order.
    pub fn cell_key(&self, ecef: Vec3) -> u32 {
        bucket_index(self.cell_deg, self.n_lat, self.n_lon, ecef) as u32
    }

    /// Writes into `out` (cleared first) the catalog indices of every
    /// satellite that could be at or above `min_elevation_deg` from
    /// `observer`, in ascending catalog order. A **superset** of the true
    /// field of view: callers still run the exact elevation test per
    /// candidate, so downstream results cannot differ from a full scan.
    pub fn candidates_into(&self, observer: Geodetic, min_elevation_deg: f64, out: &mut Vec<u32>) {
        out.clear();
        let obs_ecef = geodetic_to_ecef(observer);
        match self.cap_radius_deg(obs_ecef.norm(), min_elevation_deg) {
            Some(cap_deg) if cap_deg < FULL_SCAN_CAP_DEG => {
                let (obs_lat, obs_lon) = direction_deg(obs_ecef);
                self.walk_cap(obs_lat, obs_lon, cap_deg, out);
            }
            _ => out.extend(0..self.catalog_len as u32),
        }
    }

    /// Writes into `out` (cleared first) one conservative candidate
    /// superset for a whole **cohort** of observers: every satellite that
    /// could be at or above `min_elevation_deg` from *any* observer within
    /// `widen_deg` (geocentric angle) of the anchor direction `anchor_ecef`
    /// whose geocentric radius is at least `min_radius_km`.
    ///
    /// The bound is the per-observer ψ_max cap evaluated at the smallest
    /// member radius (the cap radius is decreasing in the observer radius)
    /// plus the widening angle: for a member `m` and a satellite above the
    /// cutoff, the triangle inequality on the sphere gives
    /// `angle(sat, anchor) ≤ angle(sat, m) + angle(m, anchor)
    ///  ≤ ψ_max(r_m) + widen ≤ ψ_max(min_radius) + widen`.
    /// Members therefore still run their own exact elevation test per
    /// candidate; sharing the superset cannot change any result.
    pub fn cohort_candidates_into(
        &self,
        anchor_ecef: Vec3,
        min_radius_km: f64,
        widen_deg: f64,
        min_elevation_deg: f64,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        match self.cap_radius_deg(min_radius_km, min_elevation_deg) {
            Some(cap_deg) if cap_deg + widen_deg < FULL_SCAN_CAP_DEG => {
                let (lat, lon) = direction_deg(anchor_ecef);
                self.walk_cap(lat, lon, cap_deg + widen_deg, out);
            }
            _ => out.extend(0..self.catalog_len as u32),
        }
    }

    /// Gathers every bucket intersecting the cap of angular radius
    /// `cap_deg` centred on the geocentric direction `(obs_lat, obs_lon)`
    /// into `out` (appended, then sorted into catalog order) — the shared
    /// grid walk behind [`VisibilityIndex::candidates_into`] and
    /// [`VisibilityIndex::cohort_candidates_into`].
    fn walk_cap(&self, obs_lat: f64, obs_lon: f64, cap_deg: f64, out: &mut Vec<u32>) {
        let cap = cap_deg.to_radians();
        let lat0 = obs_lat.to_radians();

        // Latitude rows intersecting [lat0 − ψ, lat0 + ψ].
        let row_lo = (((obs_lat - cap_deg + 90.0) / self.cell_deg).floor().max(0.0)) as usize;
        let row_hi =
            ((((obs_lat + cap_deg + 90.0) / self.cell_deg).floor()) as usize).min(self.n_lat - 1);

        for row in row_lo..=row_hi {
            // Row latitude span, radians.
            let lat_a = (row as f64 * self.cell_deg - 90.0).to_radians();
            let lat_b = (((row + 1) as f64) * self.cell_deg - 90.0).min(90.0).to_radians();

            // Conservative per-row longitude half-width: numerator uses the
            // row latitude closest to the observer, denominator the row
            // edge with the largest |latitude| (smallest cosine).
            let dist_min = if lat0 < lat_a {
                lat_a - lat0
            } else if lat0 > lat_b {
                lat0 - lat_b
            } else {
                0.0
            };
            if dist_min > cap {
                continue;
            }
            let num = hav(cap) - hav(dist_min);
            let den = lat0.cos() * lat_a.cos().min(lat_b.cos());
            let whole_row = den <= 1e-12 || num / den >= 1.0;
            let half_width_deg =
                if whole_row { 180.0 } else { 2.0 * (num / den).sqrt().asin().to_degrees() };

            let row_base = row * self.n_lon;
            let span = (half_width_deg / self.cell_deg).floor() as usize + 1;
            if 2 * span + 1 >= self.n_lon {
                self.gather(row_base, row_base + self.n_lon, out);
                continue;
            }
            // Columns [col0 − span, col0 + span], wrapping in longitude.
            let col0 = (((obs_lon + 180.0) / self.cell_deg) as usize).min(self.n_lon - 1);
            let first = col0 as i64 - span as i64;
            let last = col0 as i64 + span as i64;
            if first < 0 || last >= self.n_lon as i64 {
                // Wrapped range: two contiguous runs.
                let lo = first.rem_euclid(self.n_lon as i64) as usize;
                let hi = last.rem_euclid(self.n_lon as i64) as usize;
                self.gather(row_base + lo, row_base + self.n_lon, out);
                self.gather(row_base, row_base + hi + 1, out);
            } else {
                self.gather(row_base + first as usize, row_base + last as usize + 1, out);
            }
        }
        // Buckets were visited row-major, so the merged list needs one
        // sort to restore catalog order (it is what makes the indexed
        // field-of-view emit satellites in exactly the linear scan's
        // order).
        out.sort_unstable();
    }

    /// Convenience wrapper allocating the candidate vector.
    pub fn candidates(&self, observer: Geodetic, min_elevation_deg: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(observer, min_elevation_deg, &mut out);
        out
    }

    /// Appends the entries of buckets `[from, to)` (bucket-major CSR
    /// slices) to `out`.
    fn gather(&self, from: usize, to: usize, out: &mut Vec<u32>) {
        let lo = self.bucket_start[from] as usize;
        let hi = self.bucket_start[to] as usize;
        out.extend_from_slice(&self.entries[lo..hi]);
    }

    /// Number of indexed (present) satellites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no satellite is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The grid cell size, degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConstellationBuilder;
    use crate::catalog::Constellation;
    use starsense_astro::time::JulianDate;

    fn mini() -> Constellation {
        ConstellationBuilder::starlink_mini().seed(42).build()
    }

    fn at() -> JulianDate {
        JulianDate::from_ymd_hms(2023, 6, 1, 9, 30, 0.0)
    }

    /// Catalog indices above the cutoff, straight from the linear scan.
    fn linear_above(c: &Constellation, snap: &Snapshot, obs: Geodetic, min_el: f64) -> Vec<u32> {
        let fov = c.field_of_view_from(snap, obs, min_el);
        fov.iter()
            .map(|v| c.sats().iter().position(|s| s.norad_id == v.norad_id).unwrap() as u32)
            .collect()
    }

    #[test]
    fn candidates_cover_the_linear_scan() {
        let c = mini();
        let snap = c.snapshot(at());
        let index = VisibilityIndex::build(&snap);
        for &(lat, lon) in
            &[(41.66, -91.53), (0.0, 0.0), (-33.86, 151.21), (69.65, 18.96), (-77.85, 166.67)]
        {
            let obs = Geodetic::new(lat, lon, 0.1);
            for min_el in [10.0, 25.0, 40.0, 60.0] {
                let cand = index.candidates(obs, min_el);
                for want in linear_above(&c, &snap, obs, min_el) {
                    assert!(
                        cand.binary_search(&want).is_ok(),
                        "candidate set at ({lat},{lon}) cutoff {min_el} missed index {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_are_sorted_unique_and_much_smaller_than_the_catalog() {
        let c = mini();
        let snap = c.snapshot(at());
        let index = VisibilityIndex::build(&snap);
        let cand = index.candidates(Geodetic::new(41.66, -91.53, 0.2), 25.0);
        assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        assert!(
            cand.len() * 4 < c.len(),
            "index should prune most of the catalog: {} of {}",
            cand.len(),
            c.len()
        );
    }

    #[test]
    fn low_cutoff_still_covers() {
        // Cutoffs at and below 0° stress the margin handling; the bound
        // must stay a superset (possibly by falling back to a full scan).
        let c = mini();
        let snap = c.snapshot(at());
        let index = VisibilityIndex::build(&snap);
        let obs = Geodetic::new(20.0, 30.0, 0.0);
        for min_el in [-5.0, 0.0, 1.0] {
            let cand = index.candidates(obs, min_el);
            for want in linear_above(&c, &snap, obs, min_el) {
                assert!(cand.binary_search(&want).is_ok(), "cutoff {min_el} missed {want}");
            }
        }
    }

    #[test]
    fn empty_snapshot_indexes_nothing() {
        let c = mini();
        // Before the first launch every entry is None.
        let earliest = c.sats().iter().map(|s| s.launch.date.0).fold(f64::INFINITY, f64::min);
        let snap = c.snapshot(JulianDate(earliest - 10.0));
        let index = VisibilityIndex::build(&snap);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        // Degenerate bound → full-scan fallback over the whole catalog;
        // the exact test then rejects everything, so this stays correct.
        let cand = index.candidates(Geodetic::new(0.0, 0.0, 0.0), 25.0);
        assert_eq!(cand.len(), c.len());
    }

    #[test]
    fn cell_size_is_derived_from_the_ground_range_bound() {
        let c = mini();
        let snap = c.snapshot(at());
        let index = VisibilityIndex::build(&snap);
        // 550–570 km shells: 25° cap radius ≈ 8.4°, cell = half of it.
        assert!(
            (MIN_CELL_DEG..=MAX_CELL_DEG).contains(&index.cell_deg()),
            "cell {}",
            index.cell_deg()
        );
        assert!((3.0..6.0).contains(&index.cell_deg()), "cell {}", index.cell_deg());
    }
}
