//! Criterion benches live in `benches/`; this library is intentionally empty.
#![warn(missing_docs)]
