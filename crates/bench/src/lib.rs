//! Criterion benches live in `benches/`; the library hosts the tiny JSON
//! helpers the campaign bench uses to compare a fresh `BENCH_campaign.json`
//! against the committed baseline (the workspace vendors no JSON crate).
#![warn(missing_docs)]

/// Extracts the number at `path` (a chain of object keys, outermost first)
/// from a JSON document, e.g. `json_number(src, &["identified",
/// "serial_slots_per_sec"])`. Each key is located inside the object the
/// previous key opened — sibling objects are excluded by brace matching —
/// so a key name repeated across sections (both `oracle` and `identified`
/// report `serial_slots_per_sec`) resolves to the right one. Returns
/// `None` when a key is absent or the value is not a number. String
/// escapes are not understood; this targets the bench's own emitted shape,
/// not arbitrary JSON.
pub fn json_number(src: &str, path: &[&str]) -> Option<f64> {
    let mut scope = src;
    let (last, parents) = path.split_last()?;
    for key in parents {
        scope = object_body(scope, key)?;
    }
    let needle = format!("\"{last}\"");
    let after_key = &scope[scope.find(&needle)? + needle.len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let end = after_colon
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(after_colon.len());
    after_colon[..end].parse().ok()
}

/// The body of the `{ ... }` object that `key`'s value opens, exclusive of
/// the braces; `None` if the key is missing or not followed by an object.
fn object_body<'s>(src: &'s str, key: &str) -> Option<&'s str> {
    let needle = format!("\"{key}\"");
    let after_key = &src[src.find(&needle)? + needle.len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let body = after_colon.strip_prefix('{')?;
    let mut depth = 1usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "host_threads": 4,
  "oracle": {
    "serial_slots_per_sec": 2283.999,
    "speedup": 1.25
  },
  "identified": {
    "serial_slots_per_sec": 209.239,
    "speedup": 0.936
  }
}
"#;

    #[test]
    fn top_level_and_nested_numbers_parse() {
        assert_eq!(json_number(DOC, &["host_threads"]), Some(4.0));
        assert_eq!(json_number(DOC, &["oracle", "serial_slots_per_sec"]), Some(2283.999));
        assert_eq!(json_number(DOC, &["oracle", "speedup"]), Some(1.25));
    }

    #[test]
    fn repeated_key_names_resolve_by_section() {
        assert_eq!(json_number(DOC, &["identified", "serial_slots_per_sec"]), Some(209.239));
        assert_eq!(json_number(DOC, &["identified", "speedup"]), Some(0.936));
    }

    #[test]
    fn missing_paths_are_none() {
        assert_eq!(json_number(DOC, &["dtw", "ratio"]), None);
        assert_eq!(json_number(DOC, &["identified", "absent"]), None);
        assert_eq!(json_number(DOC, &[]), None);
        assert_eq!(json_number("not json at all", &["x"]), None);
    }

    #[test]
    fn three_level_paths_resolve_inside_the_scaling_section() {
        let doc = r#"{
  "terminal_scaling": {
    "t4": { "slots": 48, "indexed_slot_terminals_per_sec": 9000.0 },
    "t256": { "slots": 16, "indexed_slot_terminals_per_sec": 120000.5 }
  }
}"#;
        assert_eq!(
            json_number(doc, &["terminal_scaling", "t256", "indexed_slot_terminals_per_sec"]),
            Some(120000.5)
        );
        assert_eq!(json_number(doc, &["terminal_scaling", "t4", "slots"]), Some(48.0));
        assert_eq!(json_number(doc, &["terminal_scaling", "t64", "slots"]), None);
    }

    #[test]
    fn scientific_and_signed_numbers_parse() {
        let doc = r#"{"a": -1.5e-3, "b": 2E6}"#;
        assert_eq!(json_number(doc, &["a"]), Some(-0.0015));
        assert_eq!(json_number(doc, &["b"]), Some(2_000_000.0));
    }

    #[test]
    fn non_numeric_values_are_none() {
        let doc = r#"{"a": "text", "b": null}"#;
        assert_eq!(json_number(doc, &["a"]), None);
        assert_eq!(json_number(doc, &["b"]), None);
    }
}
