//! Criterion benches live in `benches/`; this library is intentionally empty.
