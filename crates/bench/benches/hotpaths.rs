//! Hot-path micro-benchmarks: the primitives every experiment leans on.
//!
//! These are the per-call costs that determine how large a campaign the
//! reproduction can run: SGP4 propagation (thousands of calls per slot),
//! TLE parsing/formatting, sidereal time, constellation snapshots and
//! field-of-view queries, and the solar ephemeris.

use criterion::{criterion_group, criterion_main, Criterion};
use starsense_astro::frames::Geodetic;
use starsense_astro::sun::sun_position_teme;
use starsense_astro::time::JulianDate;
use starsense_constellation::{ConstellationBuilder, PropagationCache};
use starsense_sgp4::{Sgp4, Tle};
use std::hint::black_box;

const TLE1: &str = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
const TLE2: &str = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

fn bench_sgp4(c: &mut Criterion) {
    let tle = Tle::parse_lines(TLE1, TLE2).unwrap();
    let sgp4 = Sgp4::new(&tle.elements()).unwrap();
    c.bench_function("sgp4/propagate_one_step", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(sgp4.propagate_minutes(black_box(t % 1440.0)).unwrap())
        })
    });
    c.bench_function("sgp4/init", |b| {
        let elements = tle.elements();
        b.iter(|| black_box(Sgp4::new(black_box(&elements)).unwrap()))
    });
}

fn bench_tle(c: &mut Criterion) {
    c.bench_function("tle/parse", |b| {
        b.iter(|| black_box(Tle::parse_lines(black_box(TLE1), black_box(TLE2)).unwrap()))
    });
    let tle = Tle::parse_lines(TLE1, TLE2).unwrap();
    c.bench_function("tle/format", |b| b.iter(|| black_box(tle.format_lines())));
}

fn bench_time_and_sun(c: &mut Criterion) {
    let jd = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
    c.bench_function("time/gmst", |b| b.iter(|| black_box(black_box(jd).gmst_rad())));
    c.bench_function("time/to_civil", |b| b.iter(|| black_box(black_box(jd).to_civil())));
    c.bench_function("sun/position", |b| b.iter(|| black_box(sun_position_teme(black_box(jd)))));
}

fn bench_constellation(c: &mut Criterion) {
    let mini = ConstellationBuilder::starlink_mini().seed(1).build();
    let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
    let iowa = Geodetic::new(41.66, -91.53, 0.2);

    c.bench_function("constellation/snapshot_mini_384sats", |b| {
        b.iter(|| black_box(mini.snapshot(black_box(at))))
    });

    let snap = mini.snapshot(at);
    c.bench_function("constellation/fov_from_snapshot", |b| {
        b.iter(|| black_box(mini.field_of_view_from(black_box(&snap), iowa, 25.0)))
    });

    c.bench_function("constellation/build_mini", |b| {
        b.iter(|| black_box(ConstellationBuilder::starlink_mini().seed(1).build()))
    });

    // The campaign engine's shared cache: a warm hit versus re-propagating
    // the same epoch — the per-terminal saving of the per-slot snapshot.
    let cache = PropagationCache::new(&mini);
    let _ = cache.snapshot(at);
    c.bench_function("constellation/snapshot_cached_hit", |b| {
        b.iter(|| black_box(cache.snapshot(black_box(at))))
    });
}

criterion_group!(benches, bench_sgp4, bench_tle, bench_time_and_sun, bench_constellation);
criterion_main!(benches);
