//! Identification-pipeline benchmarks: the §4 stages and the statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::ConstellationBuilder;
use starsense_dtw::{
    dtw_distance, dtw_distance_banded, dtw_distance_early_abandon, NearestSequence,
};
use starsense_ident::{candidate_tracks, identify_slot, DishSimulator};
use starsense_obstruction::{extract_trajectory, isolate, paint, ObstructionMap};
use starsense_scheduler::slots::slot_start;
use starsense_stats::{mann_whitney_u, pearson, Ecdf};
use std::hint::black_box;

fn track(n: usize, phase: f64) -> Vec<[f64; 2]> {
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            [30.0 * (t + phase).sin(), 30.0 * t - 15.0]
        })
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let a = track(16, 0.0);
    let b = track(16, 0.2);
    c.bench_function("dtw/16x16_2d", |bch| {
        bch.iter(|| black_box(dtw_distance(black_box(&a), black_box(&b))))
    });
    let a64 = track(64, 0.0);
    let b64 = track(64, 0.15);
    c.bench_function("dtw/64x64_2d", |bch| {
        bch.iter(|| black_box(dtw_distance(black_box(&a64), black_box(&b64))))
    });
    c.bench_function("dtw/64x64_banded_10pct", |bch| {
        bch.iter(|| black_box(dtw_distance_banded(black_box(&a64), black_box(&b64), 0.1)))
    });
    // Early abandoning with a cutoff a 1-NN search would actually carry:
    // the distance of a nearby competitor.
    let cutoff = dtw_distance(&a64, &track(64, 0.05));
    c.bench_function("dtw/64x64_early_abandon", |bch| {
        bch.iter(|| black_box(dtw_distance_early_abandon(black_box(&a64), black_box(&b64), cutoff)))
    });

    // Full-vs-pruned 1-NN over a candidate pool shaped like a slot's
    // candidate set (a couple dozen tracks, one close, the rest spread).
    let mut ns = NearestSequence::<2>::new();
    for i in 0..24 {
        ns.add(track(16, 0.05 + 0.3 * i as f64));
    }
    let query = track(16, 0.1);
    c.bench_function("dtw/1nn_24cands_exhaustive", |bch| {
        bch.iter(|| black_box(ns.ranked(black_box(&query)).first().copied()))
    });
    c.bench_function("dtw/1nn_24cands_pruned", |bch| {
        bch.iter(|| black_box(ns.best_match(black_box(&query))))
    });
}

fn pass(el0: f64, az0: f64, el1: f64, az1: f64, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            (el0 + (el1 - el0) * t, az0 + (az1 - az0) * t)
        })
        .collect()
}

fn bench_obstruction(c: &mut Criterion) {
    let samples = pass(30.0, 100.0, 75.0, 160.0, 16);
    c.bench_function("obstruction/paint_slot", |b| {
        b.iter(|| {
            let mut m = ObstructionMap::new();
            paint(&mut m, black_box(&samples));
            black_box(m)
        })
    });

    let mut prev = ObstructionMap::new();
    paint(&mut prev, &pass(30.0, 10.0, 70.0, 60.0, 16));
    let mut curr = prev.clone();
    paint(&mut curr, &samples);
    c.bench_function("obstruction/xor_isolate", |b| {
        b.iter(|| black_box(isolate(black_box(&prev), black_box(&curr))))
    });

    let iso = isolate(&prev, &curr);
    c.bench_function("obstruction/extract_trajectory", |b| {
        b.iter(|| black_box(extract_trajectory(black_box(&iso))))
    });
}

fn bench_identification(c: &mut Criterion) {
    let constellation = ConstellationBuilder::starlink_mini().seed(7).build();
    let iowa = Geodetic::new(41.66, -91.53, 0.2);
    let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));

    c.bench_function("ident/candidate_tracks_mini", |b| {
        b.iter(|| black_box(candidate_tracks(&constellation, iowa, start, 25.0, 16)))
    });

    // A realistic identify_slot call against the mini constellation.
    let fov = constellation.field_of_view(iowa, start, 35.0);
    if let Some(serving) = fov.first() {
        let mut dish = DishSimulator::new(iowa);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&constellation, 0, start, Some(serving.norad_id));
        c.bench_function("ident/identify_slot_mini", |b| {
            b.iter(|| black_box(identify_slot(&prev, &cap.map, &constellation, iowa, start)))
        });
    }
}

fn bench_stats(c: &mut Criterion) {
    let a: Vec<f64> = (0..750).map(|i| 20.0 + (i % 37) as f64 * 0.1).collect();
    let b: Vec<f64> = (0..750).map(|i| 23.0 + (i % 41) as f64 * 0.1).collect();
    c.bench_function("stats/mann_whitney_750x750", |bch| {
        bch.iter(|| black_box(mann_whitney_u(black_box(&a), black_box(&b))))
    });
    c.bench_function("stats/ecdf_build_and_eval", |bch| {
        bch.iter(|| {
            let e = Ecdf::new(black_box(&a));
            black_box(e.eval(21.0))
        })
    });
    let xs: Vec<f64> = (0..37).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.02 + 0.001 * x).collect();
    c.bench_function("stats/pearson_37", |bch| {
        bch.iter(|| black_box(pearson(black_box(&xs), black_box(&ys))))
    });
}

criterion_group!(benches, bench_dtw, bench_obstruction, bench_identification, bench_stats);
criterion_main!(benches);
