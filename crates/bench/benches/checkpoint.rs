//! Checkpoint codec micro-benchmarks: the cost of making a campaign
//! crash-safe.
//!
//! A resumable campaign serialises its full engine state at every
//! checkpoint boundary, so the snapshot codec sits on the segment hot
//! path. These benches pin the per-checkpoint costs: framing a
//! multi-section snapshot (checksums included), parsing and validating
//! it back, the FNV-1a integrity hash itself, the primitive
//! writer/reader lanes underneath every section codec, the durable
//! rotating write (tmp + fsync + rename), and the observation-stream
//! fingerprint the chaos harness compares across process lives.

use criterion::{criterion_group, criterion_main, Criterion};
use starsense_astro::time::JulianDate;
use starsense_checkpoint::{
    fnv1a, load_latest, write_rotating, ByteReader, ByteWriter, Snapshot, SnapshotBuilder,
};
use starsense_constellation::ConstellationBuilder;
use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_core::resume::fingerprint_observations;
use starsense_core::vantage::paper_terminals;
use std::hint::black_box;

/// Section payloads sized like a 10k-terminal campaign checkpoint:
/// a small metadata header, a scheduler-state section (~40 B per
/// terminal), and a dish/observation section (~200 B per terminal).
fn sample_sections() -> Vec<(u32, Vec<u8>)> {
    let mut meta = ByteWriter::with_capacity(64);
    for word in 0u64..8 {
        meta.put_u64(word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    let mut sched = ByteWriter::with_capacity(40 * 10_000);
    let mut dish = ByteWriter::with_capacity(200 * 10_000);
    for tid in 0u64..10_000 {
        sched.put_u64(tid);
        for lane in 0u64..4 {
            sched.put_u64(tid.rotate_left(17) ^ lane);
        }
        for slot in 0u64..25 {
            dish.put_f64_bits((tid as f64).mul_add(1e-3, slot as f64));
        }
    }
    vec![(1, meta.into_bytes()), (2, sched.into_bytes()), (3, dish.into_bytes())]
}

fn encoded_snapshot() -> Vec<u8> {
    let mut builder = SnapshotBuilder::new();
    for (id, payload) in sample_sections() {
        builder.add_section(id, payload);
    }
    builder.finish().expect("snapshot encode")
}

fn bench_container(c: &mut Criterion) {
    let sections = sample_sections();
    let total: usize = sections.iter().map(|(_, p)| p.len()).sum();
    c.bench_function("checkpoint/snapshot_encode_2.4MB", |b| {
        b.iter(|| {
            let mut builder = SnapshotBuilder::new();
            for (id, payload) in &sections {
                builder.add_section(*id, payload.clone());
            }
            black_box(builder.finish().expect("snapshot encode"))
        })
    });
    let bytes = encoded_snapshot();
    assert!(bytes.len() > total, "framing must add a header and section table");
    c.bench_function("checkpoint/snapshot_parse_validate", |b| {
        b.iter(|| black_box(Snapshot::parse(black_box(&bytes)).expect("snapshot parse")))
    });
    c.bench_function("checkpoint/fnv1a_2.4MB", |b| b.iter(|| black_box(fnv1a(black_box(&bytes)))));
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("checkpoint/writer_mixed_64k_fields", |b| {
        b.iter(|| {
            let mut w = ByteWriter::with_capacity(16 * 65_536);
            for i in 0u64..65_536 {
                w.put_u64(i);
                w.put_f64_bits(i as f64 * 1.5);
            }
            black_box(w.into_bytes())
        })
    });
    let mut w = ByteWriter::with_capacity(16 * 65_536);
    for i in 0u64..65_536 {
        w.put_u64(i);
        w.put_f64_bits(i as f64 * 1.5);
    }
    let buf = w.into_bytes();
    c.bench_function("checkpoint/reader_mixed_64k_fields", |b| {
        b.iter(|| {
            let mut r = ByteReader::new(black_box(&buf));
            let mut acc = 0u64;
            for _ in 0..65_536 {
                acc ^= r.get_u64("bench u64").expect("u64");
                acc ^= r.get_f64_bits("bench f64").expect("f64").to_bits();
            }
            black_box(acc)
        })
    });
}

fn bench_durable_write(c: &mut Criterion) {
    let bytes = encoded_snapshot();
    let path = std::env::temp_dir()
        .join(format!("starsense-bench-checkpoint-{}.ckpt", std::process::id()));
    c.bench_function("checkpoint/write_rotating_fsync_2.4MB", |b| {
        b.iter(|| write_rotating(black_box(&path), black_box(&bytes)).expect("durable write"))
    });
    c.bench_function("checkpoint/load_latest_2.4MB", |b| {
        b.iter(|| black_box(load_latest(black_box(&path)).expect("load")))
    });
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(starsense_checkpoint::backup_path(&path));
}

fn bench_fingerprint(c: &mut Criterion) {
    let constellation = ConstellationBuilder::starlink_mini().seed(7).build();
    let mut terminals = paper_terminals();
    terminals.truncate(1);
    let campaign = Campaign::oracle(&constellation, terminals, CampaignConfig::default(), 7);
    let obs = campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 8, 0, 0.0), 25);
    c.bench_function("checkpoint/fingerprint_observations_25_slots", |b| {
        b.iter(|| black_box(fingerprint_observations(black_box(&obs))))
    });
}

criterion_group!(
    benches,
    bench_container,
    bench_primitives,
    bench_durable_write,
    bench_fingerprint
);
criterion_main!(benches);
