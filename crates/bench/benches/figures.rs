//! Per-figure regeneration benches: one harness per table/figure of the
//! paper's evaluation, at reduced (mini-constellation) scale so the suite
//! completes quickly. The full-scale regenerations live in the
//! `starsense-experiments` binaries; these benches track the cost of each
//! figure's pipeline and guard it against regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig, SlotObservation};
use starsense_core::characterize::{
    aoe_analysis, azimuth_analysis, launch_analysis, sunlit_analysis,
};
use starsense_core::model::build_dataset;
use starsense_core::vantage::paper_terminals;
use starsense_forest::{ForestParams, MaxFeatures, RandomForest, TreeParams};
use starsense_ident::run_validation;
use starsense_netemu::groundstation::paper_pops;
use starsense_netemu::{Emulator, EmulatorConfig};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy};
use starsense_stats::mann_whitney_u;
use std::hint::black_box;

fn mini() -> Constellation {
    ConstellationBuilder::starlink_mini().seed(3).build()
}

fn mini_campaign(slots: usize) -> Vec<SlotObservation> {
    let constellation = mini();
    let campaign =
        Campaign::oracle(&constellation, paper_terminals(), CampaignConfig::default(), 3);
    campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0), slots)
}

fn fig2_benches(c: &mut Criterion) {
    let constellation = mini();
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 5, 37, 30.0);

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("rtt_series_10s", |b| {
        b.iter(|| {
            let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), paper_terminals(), 3);
            let mut emu = Emulator::new(
                &constellation,
                scheduler,
                paper_pops(),
                EmulatorConfig::default(),
                3,
            );
            black_box(emu.probe_trace(0, from, 10.0))
        })
    });
    g.finish();

    // The Mann-Whitney window test on realistic window sizes.
    let a: Vec<f64> = (0..750).map(|i| 20.0 + (i % 37) as f64 * 0.08).collect();
    let b: Vec<f64> = (0..750).map(|i| 24.0 + (i % 29) as f64 * 0.08).collect();
    c.bench_function("fig2/window_test", |bch| {
        bch.iter(|| black_box(mann_whitney_u(black_box(&a), black_box(&b))))
    });
}

fn fig3_bench(c: &mut Criterion) {
    use starsense_ident::DishSimulator;
    use starsense_obstruction::{extract_trajectory, isolate};
    let constellation = mini();
    let iowa = Geodetic::new(41.66, -91.53, 0.2);
    let start =
        starsense_scheduler::slots::slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
    let fov = constellation.field_of_view(iowa, start, 30.0);
    let serving: Vec<u32> = fov.iter().map(|v| v.norad_id).collect();

    c.bench_function("fig3/obstruction_xor", |b| {
        b.iter(|| {
            let mut dish = DishSimulator::new(iowa);
            let cap1 = dish.play_slot(&constellation, 0, start, serving.first().copied());
            let cap2 = dish.play_slot(
                &constellation,
                1,
                start.plus_seconds(15.0),
                serving.get(1).copied().or_else(|| serving.first().copied()),
            );
            let iso = isolate(&cap1.map, &cap2.map);
            black_box(extract_trajectory(&iso))
        })
    });
}

fn characterization_benches(c: &mut Criterion) {
    let obs = mini_campaign(120);
    c.bench_function("fig4/aoe_cdf", |b| b.iter(|| black_box(aoe_analysis(black_box(&obs), 0))));
    c.bench_function("fig5/azimuth_cdf", |b| {
        b.iter(|| black_box(azimuth_analysis(black_box(&obs), 0)))
    });
    c.bench_function("fig6/launch_pref", |b| {
        b.iter(|| black_box(launch_analysis(black_box(&obs), 0)))
    });
    c.bench_function("fig7/sunlit", |b| b.iter(|| black_box(sunlit_analysis(black_box(&obs), 0))));
}

fn fig8_bench(c: &mut Criterion) {
    let obs = mini_campaign(300);
    let (_fx, data) = build_dataset(&obs, 0);
    let params = ForestParams {
        n_trees: 15,
        tree: TreeParams {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
        },
        bootstrap: true,
    };

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("model_fit", |b| {
        b.iter(|| black_box(RandomForest::fit(black_box(&data), &params, 1)))
    });
    let forest = RandomForest::fit(&data, &params, 1);
    g.bench_function("model_topk_predict", |b| {
        b.iter(|| {
            let hits: usize = (0..data.len())
                .filter(|&i| forest.predict_top_k(data.row(i).0, 5).contains(&data.row(i).1))
                .count();
            black_box(hits)
        })
    });
    g.finish();
}

fn ident_bench(c: &mut Criterion) {
    let constellation = mini();
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);

    let mut g = c.benchmark_group("tab_ident");
    g.sample_size(10);
    g.bench_function("accuracy_10_slots", |b| {
        b.iter(|| {
            let terminals = vec![starsense_scheduler::Terminal::new(
                0,
                "Iowa",
                Geodetic::new(41.66, -91.53, 0.2),
            )];
            let mut sched = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 3);
            black_box(run_validation(&constellation, &mut sched, 0, from, 10))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig2_benches,
    fig3_bench,
    characterization_benches,
    fig8_bench,
    ident_bench
);
criterion_main!(benches);
