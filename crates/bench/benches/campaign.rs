//! Campaign-engine throughput and DTW-pruning effectiveness.
//!
//! Unlike the criterion-style benches, this harness measures whole
//! campaigns (the §5 data-collection loop) and emits a machine-readable
//! `BENCH_campaign.json` at the repository root:
//!
//! * **oracle / identified throughput** — slots per second for the serial
//!   engine (`threads = 1`) versus the parallel engine (auto threads),
//!   with the host's thread count recorded so single-core results are not
//!   mistaken for a parallelism regression;
//! * **DTW pruning** — matrix cells evaluated by the pruned matcher versus
//!   the exhaustive scan over a sweep of real identification slots, plus
//!   an agreement check (the pruned winner must always equal the
//!   exhaustive winner).
//!
//! `--test` (as in `cargo bench -- --test`) runs a smoke pass: tiny
//! workload, no JSON written.
//!
//! `--check-baseline` compares the freshly measured identified-mode serial
//! throughput against the committed `BENCH_campaign.json` before it is
//! overwritten, and exits non-zero on a >20% regression. The check only
//! scores hosts comparable to the baseline (same recorded `host_threads`);
//! otherwise it degrades to a warning, so CI runners of any width can run
//! it. Ignored in smoke mode (the tiny workload measures nothing).

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_dtw::dtw_distance;
use starsense_ident::{candidate_tracks, identify_from_trajectory_counted, DishSimulator};
use starsense_obstruction::{extract_trajectory, isolate};
use starsense_scheduler::slots::slot_start;
use starsense_scheduler::Terminal;
use std::time::Instant;

const SEED: u64 = 42;

fn terminals() -> Vec<Terminal> {
    vec![
        Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
        Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
        Terminal::new(2, "Austin", Geodetic::new(30.27, -97.74, 0.15)),
        Terminal::new(3, "Berlin", Geodetic::new(52.52, 13.40, 0.03)),
    ]
}

fn campaign_start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0)
}

/// Runs one campaign and returns slots/second (terminal-slots are not
/// multiplied in: "slot" here is a scheduler tick across all terminals).
fn time_campaign(c: &Constellation, identified: bool, threads: usize, slots: usize) -> f64 {
    let config = CampaignConfig { threads, ..CampaignConfig::default() };
    let campaign = if identified {
        Campaign::identified(c, terminals(), config, SEED)
    } else {
        Campaign::oracle(c, terminals(), config, SEED)
    };
    let start = Instant::now();
    let obs = campaign.run(campaign_start(), slots);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(obs.len(), slots * terminals().len());
    slots as f64 / elapsed
}

struct DtwSweep {
    cells_full: usize,
    cells_pruned: usize,
    cells_coarse: usize,
    queries: usize,
    agreements: usize,
}

/// Replays an identification sweep and tallies pruned-vs-full DTW work,
/// checking the pruned winner against an exhaustive scan every slot.
fn dtw_sweep(c: &Constellation, slots: usize) -> DtwSweep {
    let loc = Geodetic::new(41.66, -91.53, 0.2);
    let mut dish = DishSimulator::new(loc);
    let mut prev = None;
    let mut sweep =
        DtwSweep { cells_full: 0, cells_pruned: 0, cells_coarse: 0, queries: 0, agreements: 0 };
    let t0 = slot_start(campaign_start());
    for k in 0..slots {
        let at = t0.plus_seconds(15.0 * k as f64);
        let serving = c.field_of_view(loc, at, 30.0).first().map(|v| v.norad_id);
        let cap = dish.play_slot(c, k as i64, at, serving);
        let usable_prev = if cap.after_reset { None } else { prev.take() };
        if let Some(prev_cap) = usable_prev {
            let iso = isolate(&prev_cap, &cap.map);
            let trajectory = extract_trajectory(&iso);
            if let Some((id, stats)) = identify_from_trajectory_counted(&trajectory, c, loc, at) {
                sweep.cells_full += stats.cells_full;
                sweep.cells_pruned += stats.cells_evaluated;
                sweep.cells_coarse += stats.coarse_cells;
                sweep.queries += 1;
                if exhaustive_winner(c, loc, at, &trajectory) == Some(id.norad_id) {
                    sweep.agreements += 1;
                }
            }
        }
        prev = Some(cap.map.clone());
    }
    sweep
}

/// The pre-pruning matcher: full DTW in both orientations, strict `<`
/// update in index order.
fn exhaustive_winner(
    c: &Constellation,
    loc: Geodetic,
    at: JulianDate,
    trajectory: &[starsense_obstruction::PolarSample],
) -> Option<u32> {
    let isolated: Vec<[f64; 2]> = trajectory.iter().map(|s| s.to_cartesian()).collect();
    let mut best: Option<(u32, f64)> = None;
    for cand in candidate_tracks(c, loc, at, 25.0, 16) {
        let fwd = cand.cartesian();
        let mut rev = fwd.clone();
        rev.reverse();
        let d = dtw_distance(&isolated, &fwd).min(dtw_distance(&isolated, &rev));
        if best.map_or(true, |(_, bd)| d < bd) {
            best = Some((cand.norad_id, d));
        }
    }
    best.map(|(id, _)| id)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

const BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");

/// Maximum tolerated identified-mode serial throughput loss versus the
/// committed baseline before `--check-baseline` fails the run.
const MAX_REGRESSION: f64 = 0.20;

/// Scores `fresh` identified-mode serial throughput against the committed
/// baseline document. Returns an error message on a >20% regression, `Ok`
/// with a human-readable verdict otherwise — including the warn-and-skip
/// cases (no baseline, or a host the baseline does not represent).
fn check_against_baseline(
    baseline: Option<&str>,
    fresh: f64,
    host_threads: usize,
) -> Result<String, String> {
    let Some(doc) = baseline else {
        return Ok("baseline check skipped: no committed BENCH_campaign.json".to_string());
    };
    let (Some(base), Some(base_threads)) = (
        starsense_bench::json_number(doc, &["identified", "serial_slots_per_sec"]),
        starsense_bench::json_number(doc, &["host_threads"]),
    ) else {
        return Ok("baseline check skipped: committed JSON missing identified numbers".to_string());
    };
    if base_threads as usize != host_threads {
        return Ok(format!(
            "baseline check skipped: baseline host_threads={base_threads} vs this host={host_threads}"
        ));
    }
    if base <= 0.0 {
        return Ok("baseline check skipped: non-positive baseline throughput".to_string());
    }
    let ratio = fresh / base;
    if ratio < 1.0 - MAX_REGRESSION {
        return Err(format!(
            "identified-mode serial throughput regressed: {fresh:.1} vs baseline {base:.1} slots/s \
             ({:.0}% of baseline, threshold {:.0}%)",
            100.0 * ratio,
            100.0 * (1.0 - MAX_REGRESSION)
        ));
    }
    Ok(format!(
        "baseline check ok: {fresh:.1} vs baseline {base:.1} slots/s ({:.0}%)",
        100.0 * ratio
    ))
}

fn main() {
    criterion::configure_from_args(std::env::args().skip(1));
    let smoke = criterion::is_smoke();
    let check_baseline = std::env::args().skip(1).any(|a| a == "--check-baseline");
    // Captured before the fresh numbers overwrite it.
    let committed_baseline = std::fs::read_to_string(BENCH_JSON_PATH).ok();

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (oracle_slots, ident_slots, sweep_slots) = if smoke { (6, 4, 6) } else { (1600, 120, 200) };

    let constellation = ConstellationBuilder::starlink_mini().seed(SEED).build();

    println!("campaign bench: host_threads={host_threads} smoke={smoke}");

    let oracle_serial = time_campaign(&constellation, false, 1, oracle_slots);
    let oracle_parallel = time_campaign(&constellation, false, 0, oracle_slots);
    println!(
        "campaign/oracle_{oracle_slots}slots_4terms      serial {oracle_serial:9.1} slots/s   parallel {oracle_parallel:9.1} slots/s   speedup {:.2}x",
        oracle_parallel / oracle_serial
    );

    let ident_serial = time_campaign(&constellation, true, 1, ident_slots);
    let ident_parallel = time_campaign(&constellation, true, 0, ident_slots);
    println!(
        "campaign/identified_{ident_slots}slots_4terms   serial {ident_serial:9.1} slots/s   parallel {ident_parallel:9.1} slots/s   speedup {:.2}x",
        ident_parallel / ident_serial
    );

    let sweep = dtw_sweep(&constellation, sweep_slots);
    let ratio = sweep.cells_pruned as f64 / sweep.cells_full.max(1) as f64;
    println!(
        "dtw/cascade_sweep_{sweep_slots}slots            {} of {} exact cells ({:.1}%) + {} coarse   agreement {}/{}",
        sweep.cells_pruned,
        sweep.cells_full,
        100.0 * ratio,
        sweep.cells_coarse,
        sweep.agreements,
        sweep.queries
    );
    assert_eq!(sweep.agreements, sweep.queries, "cascade matcher must agree with exhaustive scan");

    if smoke {
        println!("smoke mode: skipping BENCH_campaign.json");
        return;
    }

    let json = format!(
        r#"{{
  "workload": {{
    "constellation": "starlink_mini_384sats",
    "terminals": 4,
    "oracle_slots": {oracle_slots},
    "identified_slots": {ident_slots},
    "dtw_sweep_slots": {sweep_slots},
    "seed": {SEED}
  }},
  "host_threads": {host_threads},
  "oracle": {{
    "serial_slots_per_sec": {},
    "parallel_slots_per_sec": {},
    "speedup": {}
  }},
  "identified": {{
    "serial_slots_per_sec": {},
    "parallel_slots_per_sec": {},
    "speedup": {}
  }},
  "dtw": {{
    "cells_full": {},
    "cells_pruned": {},
    "cells_coarse": {},
    "ratio": {},
    "queries": {},
    "agreement": {}
  }}
}}
"#,
        json_f(oracle_serial),
        json_f(oracle_parallel),
        json_f(oracle_parallel / oracle_serial),
        json_f(ident_serial),
        json_f(ident_parallel),
        json_f(ident_parallel / ident_serial),
        sweep.cells_full,
        sweep.cells_pruned,
        sweep.cells_coarse,
        json_f(ratio),
        sweep.queries,
        json_f(sweep.agreements as f64 / sweep.queries.max(1) as f64),
    );
    std::fs::write(BENCH_JSON_PATH, json).expect("write BENCH_campaign.json");
    println!("wrote {BENCH_JSON_PATH}");

    if check_baseline {
        match check_against_baseline(committed_baseline.as_deref(), ident_serial, host_threads) {
            Ok(verdict) => println!("{verdict}"),
            Err(regression) => {
                eprintln!("{regression}");
                std::process::exit(1);
            }
        }
    }
}
