//! Campaign-engine throughput and DTW-pruning effectiveness.
//!
//! Unlike the criterion-style benches, this harness measures whole
//! campaigns (the §5 data-collection loop) and emits a machine-readable
//! `BENCH_campaign.json` at the repository root:
//!
//! * **oracle / identified throughput** — slots per second for the serial
//!   engine (`threads = 1`) versus the parallel engine (auto threads),
//!   with the host's thread count recorded so single-core results are not
//!   mistaken for a parallelism regression;
//! * **DTW pruning** — matrix cells evaluated by the pruned matcher versus
//!   the exhaustive scan over a sweep of real identification slots, plus
//!   an agreement check (the pruned winner must always equal the
//!   exhaustive winner);
//! * **terminal scaling** — scheduler-tick throughput (slot·terminals per
//!   second) across the [`SCALING_SWEEP`] list, in up to three arms per
//!   point: the production **cohort** engine (shared cohort candidate
//!   supersets + the segment-pruned, precomputed allocator), the frozen
//!   per-terminal **indexed** reference engine (PR-7's path, kept
//!   callable exactly for this A/B), and the full-catalog **linear** scan.
//!   4/64/256 terminals run on the mini constellation with all three
//!   arms; 1 000 and 10 000 terminals on the 4 236-satellite multi-shell
//!   gen1 catalog drop the linear arm; the 100 000-terminal point runs
//!   the cohort engine alone — the reference is priced out exactly where
//!   the cohorts matter most.
//!
//! `--test` (as in `cargo bench -- --test`) runs a smoke pass: tiny
//! workload (the large sweep points drop to a single slot and the
//! 100 000-terminal point shrinks to its `smoke_terminals` count), no
//! JSON written.
//!
//! `--check-baseline` compares the freshly measured serial throughputs
//! (oracle, identified, and the 256-, 1 000- and 10 000-terminal indexed
//! sweeps) against the committed `BENCH_campaign.json` before it is
//! overwritten, and exits non-zero on a >20% regression on any of them.
//! On hosts with at least [`SPEEDUP_HOST_THREADS`] CPUs it also demands
//! an identified-mode parallel speedup of ≥ [`MIN_PARALLEL_SPEEDUP`]× and
//! a 10 000-terminal cohort-over-reference speedup of ≥
//! [`MIN_COHORT_SPEEDUP`]×. The regression check only scores hosts
//! comparable to the baseline (same recorded `host_threads`); otherwise
//! it degrades to a warning, so CI runners of any width can run it. In
//! smoke mode it degrades to a structural check: the committed JSON must
//! still carry every guarded number and the speedup fields (the tiny
//! workload measures nothing).

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_dtw::dtw_distance;
use starsense_ident::{candidate_tracks, identify_from_trajectory_counted, DishSimulator};
use starsense_obstruction::{extract_trajectory, isolate};
use starsense_scheduler::slots::slot_start;
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy, Terminal};
use std::time::Instant;

const SEED: u64 = 42;

fn terminals() -> Vec<Terminal> {
    vec![
        Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
        Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
        Terminal::new(2, "Austin", Geodetic::new(30.27, -97.74, 0.15)),
        Terminal::new(3, "Berlin", Geodetic::new(52.52, 13.40, 0.03)),
    ]
}

fn campaign_start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0)
}

/// Runs one campaign and returns slots/second (terminal-slots are not
/// multiplied in: "slot" here is a scheduler tick across all terminals).
fn time_campaign(c: &Constellation, identified: bool, threads: usize, slots: usize) -> f64 {
    let config = CampaignConfig { threads, ..CampaignConfig::default() };
    let campaign = if identified {
        Campaign::identified(c, terminals(), config, SEED)
    } else {
        Campaign::oracle(c, terminals(), config, SEED)
    };
    let start = Instant::now();
    let obs = campaign.run(campaign_start(), slots);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(obs.len(), slots * terminals().len());
    slots as f64 / elapsed
}

/// `n` terminals on a deterministic Fibonacci-style lattice over the
/// populated latitudes — the terminal-scale workload for the visibility
/// index, with no two terminals sharing a sky.
fn sweep_terminals(n: usize) -> Vec<Terminal> {
    (0..n)
        .map(|i| {
            let lat = -55.0 + 110.0 * ((i as f64 * 0.618_033_988_749_895).fract());
            let lon = -180.0 + 360.0 * ((i as f64 * 0.754_877_666_246_693).fract());
            Terminal::new(i, format!("sweep{i}"), Geodetic::new(lat, lon, 0.1))
        })
        .collect()
}

/// One engine configuration of the terminal-scaling sweep. All three arms
/// produce bit-identical allocations (equality-tested in the scheduler
/// crate); only the work per slot differs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepArm {
    /// The production engine: cohort-shared candidate supersets feeding
    /// the segment-pruned, slot-table allocator.
    Cohort,
    /// The frozen per-terminal reference engine (PR-7's hot path): indexed
    /// per-terminal fields of view plus the exhaustive-GSO allocator.
    Indexed,
    /// The full-catalog linear field-of-view scan over the reference
    /// allocator.
    Linear,
}

/// Times `slots` scheduler ticks over `n` terminals through the chosen
/// engine arm and returns slot·terminals per second. Everything the arm
/// does not select (snapshot propagation, scoring inputs, the softmax
/// draws) is identical across arms, so the ratios isolate the cohort and
/// allocator optimizations.
fn time_terminal_sweep(c: &Constellation, n: usize, slots: usize, arm: SweepArm) -> f64 {
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), sweep_terminals(n), SEED);
    let first_mid = slot_start(campaign_start()).plus_seconds(7.5);
    let start = Instant::now();
    let mut served = 0usize;
    for k in 0..slots {
        let at = first_mid.plus_seconds(15.0 * k as f64);
        let snapshot = c.snapshot(slot_start(at));
        let fov = match arm {
            SweepArm::Cohort => scheduler.fields_of_view_cohort(c, &snapshot),
            SweepArm::Indexed => scheduler.fields_of_view(c, &snapshot),
            SweepArm::Linear => scheduler.fields_of_view_linear(c, &snapshot),
        };
        let allocs = match arm {
            SweepArm::Cohort => scheduler.allocate_from_available(at, fov),
            SweepArm::Indexed | SweepArm::Linear => {
                scheduler.allocate_from_available_reference(at, fov)
            }
        };
        served += allocs.iter().filter(|a| a.chosen.is_some()).count();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    assert!(served > 0, "terminal sweep allocated nothing");
    (slots * n) as f64 / elapsed
}

/// Which catalog a sweep point schedules against.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepCatalog {
    /// 384-satellite single-shell `starlink_mini`.
    Mini,
    /// 4 236-satellite four-shell `starlink_gen1`.
    Gen1,
}

impl SweepCatalog {
    fn label(self) -> &'static str {
        match self {
            SweepCatalog::Mini => "starlink_mini_384sats",
            SweepCatalog::Gen1 => "starlink_gen1_4236sats",
        }
    }
}

/// One declared entry of the terminal-scaling sweep. The list is data, not
/// code: adding a point means adding a line here — the measurement loop,
/// the JSON emission (`"t{terminals}"` keys, kept `json_number`-parsable
/// for the gated entries), and the console report all follow.
struct SweepSpec {
    terminals: usize,
    /// Terminal count in smoke mode (the 100k point cannot run at full
    /// width in a CI smoke pass; every other point keeps its count).
    smoke_terminals: usize,
    /// Scheduler ticks in the full run.
    slots: usize,
    /// Scheduler ticks in smoke mode.
    smoke_slots: usize,
    /// Run the frozen per-terminal reference engine too — the denominator
    /// of the cohort speedup. Affordable everywhere except the 100k point.
    per_terminal: bool,
    /// Run the reference full-catalog linear scan too. Affordable only at
    /// small terminal counts.
    linear: bool,
    catalog: SweepCatalog,
}

/// The terminal-scaling sweep: the historical 4/64/256 mini-constellation
/// points (with the linear reference), the 1k/10k terminal points on the
/// multi-shell gen1 catalog with the cohort-vs-reference A/B, then the
/// 100 000-terminal gen1 point on the cohort engine alone.
const SCALING_SWEEP: &[SweepSpec] = &[
    SweepSpec {
        terminals: 4,
        smoke_terminals: 4,
        slots: 48,
        smoke_slots: 2,
        per_terminal: true,
        linear: true,
        catalog: SweepCatalog::Mini,
    },
    SweepSpec {
        terminals: 64,
        smoke_terminals: 64,
        slots: 32,
        smoke_slots: 2,
        per_terminal: true,
        linear: true,
        catalog: SweepCatalog::Mini,
    },
    SweepSpec {
        terminals: 256,
        smoke_terminals: 256,
        slots: 16,
        smoke_slots: 1,
        per_terminal: true,
        linear: true,
        catalog: SweepCatalog::Mini,
    },
    SweepSpec {
        terminals: 1_000,
        smoke_terminals: 1_000,
        slots: 8,
        smoke_slots: 1,
        per_terminal: true,
        linear: false,
        catalog: SweepCatalog::Gen1,
    },
    SweepSpec {
        terminals: 10_000,
        smoke_terminals: 10_000,
        slots: 2,
        smoke_slots: 1,
        per_terminal: true,
        linear: false,
        catalog: SweepCatalog::Gen1,
    },
    SweepSpec {
        terminals: 100_000,
        smoke_terminals: 2_000,
        slots: 1,
        smoke_slots: 1,
        per_terminal: false,
        linear: false,
        catalog: SweepCatalog::Gen1,
    },
];

/// One measured point of the terminal-scaling sweep.
struct SweepPoint {
    spec: &'static SweepSpec,
    slots: usize,
    /// The production cohort engine.
    cohort: f64,
    /// The frozen per-terminal reference engine; `None` where the spec
    /// skips it.
    indexed: Option<f64>,
    /// `None` where the spec skips the linear reference.
    linear: Option<f64>,
}

struct DtwSweep {
    cells_full: usize,
    cells_pruned: usize,
    cells_coarse: usize,
    queries: usize,
    agreements: usize,
}

/// Replays an identification sweep and tallies pruned-vs-full DTW work,
/// checking the pruned winner against an exhaustive scan every slot.
fn dtw_sweep(c: &Constellation, slots: usize) -> DtwSweep {
    let loc = Geodetic::new(41.66, -91.53, 0.2);
    let mut dish = DishSimulator::new(loc);
    let mut prev = None;
    let mut sweep =
        DtwSweep { cells_full: 0, cells_pruned: 0, cells_coarse: 0, queries: 0, agreements: 0 };
    let t0 = slot_start(campaign_start());
    for k in 0..slots {
        let at = t0.plus_seconds(15.0 * k as f64);
        let serving = c.field_of_view(loc, at, 30.0).first().map(|v| v.norad_id);
        let cap = dish.play_slot(c, k as i64, at, serving);
        let usable_prev = if cap.after_reset { None } else { prev.take() };
        if let Some(prev_cap) = usable_prev {
            let iso = isolate(&prev_cap, &cap.map);
            let trajectory = extract_trajectory(&iso);
            if let Some((id, stats)) = identify_from_trajectory_counted(&trajectory, c, loc, at) {
                sweep.cells_full += stats.cells_full;
                sweep.cells_pruned += stats.cells_evaluated;
                sweep.cells_coarse += stats.coarse_cells;
                sweep.queries += 1;
                if exhaustive_winner(c, loc, at, &trajectory) == Some(id.norad_id) {
                    sweep.agreements += 1;
                }
            }
        }
        prev = Some(cap.map.clone());
    }
    sweep
}

/// The pre-pruning matcher: full DTW in both orientations, strict `<`
/// update in index order.
fn exhaustive_winner(
    c: &Constellation,
    loc: Geodetic,
    at: JulianDate,
    trajectory: &[starsense_obstruction::PolarSample],
) -> Option<u32> {
    let isolated: Vec<[f64; 2]> = trajectory.iter().map(|s| s.to_cartesian()).collect();
    let mut best: Option<(u32, f64)> = None;
    for cand in candidate_tracks(c, loc, at, 25.0, 16) {
        let fwd = cand.cartesian();
        let mut rev = fwd.clone();
        rev.reverse();
        let d = dtw_distance(&isolated, &fwd).min(dtw_distance(&isolated, &rev));
        if best.map_or(true, |(_, bd)| d < bd) {
            best = Some((cand.norad_id, d));
        }
    }
    best.map(|(id, _)| id)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f).unwrap_or_else(|| "null".to_string())
}

const BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");

/// Maximum tolerated throughput loss on any guarded metric versus the
/// committed baseline before `--check-baseline` fails the run.
const MAX_REGRESSION: f64 = 0.20;

/// The JSON paths `--check-baseline` guards, with human-readable labels.
const GUARDED_METRICS: [(&[&str], &str); 5] = [
    (&["oracle", "serial_slots_per_sec"], "oracle serial slots/s"),
    (&["identified", "serial_slots_per_sec"], "identified serial slots/s"),
    (
        &["terminal_scaling", "t256", "indexed_slot_terminals_per_sec"],
        "256-terminal indexed slot·terminals/s",
    ),
    (
        &["terminal_scaling", "t1000", "indexed_slot_terminals_per_sec"],
        "1000-terminal gen1 indexed slot·terminals/s",
    ),
    (
        &["terminal_scaling", "t10000", "indexed_slot_terminals_per_sec"],
        "10000-terminal gen1 indexed slot·terminals/s",
    ),
];

/// Identified-mode parallel speedup demanded by `--check-baseline` on
/// hosts with at least [`SPEEDUP_HOST_THREADS`] CPUs. Below that width a
/// 1.5× gain is not physically available, so the check degrades to a
/// warning (and smoke mode validates the baseline's speedup fields
/// structurally instead).
const MIN_PARALLEL_SPEEDUP: f64 = 1.5;

/// Minimum host width for the parallel-speedup assertion to be scored.
const SPEEDUP_HOST_THREADS: usize = 4;

/// Cohort-engine speedup over the frozen per-terminal reference demanded
/// by `--check-baseline` at the 10 000-terminal gen1 point — the headline
/// claim of the cohort fast path. Scored on hosts with at least
/// [`SPEEDUP_HOST_THREADS`] CPUs (the same comparability bar as the
/// parallel-speedup gate); narrower hosts report the measured ratio as a
/// warning instead of failing a possibly noise-dominated run.
const MIN_COHORT_SPEEDUP: f64 = 2.0;

/// Scores each freshly measured guarded metric against the committed
/// baseline document. Returns the first >20% regression as an error, and
/// one human-readable verdict per metric otherwise — including the
/// warn-and-skip cases (no baseline, a host the baseline does not
/// represent, or a metric the committed JSON predates).
fn check_against_baseline(
    baseline: Option<&str>,
    fresh: &[f64],
    host_threads: usize,
) -> Result<Vec<String>, String> {
    assert_eq!(fresh.len(), GUARDED_METRICS.len(), "one fresh value per guarded metric");
    let Some(doc) = baseline else {
        return Ok(vec!["baseline check skipped: no committed BENCH_campaign.json".to_string()]);
    };
    let Some(base_threads) = starsense_bench::json_number(doc, &["host_threads"]) else {
        return Ok(vec!["baseline check skipped: committed JSON missing host_threads".to_string()]);
    };
    if base_threads as usize != host_threads {
        return Ok(vec![format!(
            "baseline check skipped: baseline host_threads={base_threads} vs this host={host_threads}"
        )]);
    }
    let mut verdicts = Vec::new();
    for ((path, label), &value) in GUARDED_METRICS.iter().zip(fresh) {
        let Some(base) = starsense_bench::json_number(doc, path) else {
            verdicts.push(format!("{label}: skipped (not in committed baseline)"));
            continue;
        };
        if base <= 0.0 {
            verdicts.push(format!("{label}: skipped (non-positive baseline)"));
            continue;
        }
        let ratio = value / base;
        if ratio < 1.0 - MAX_REGRESSION {
            return Err(format!(
                "{label} regressed: {value:.1} vs baseline {base:.1} \
                 ({:.0}% of baseline, threshold {:.0}%)",
                100.0 * ratio,
                100.0 * (1.0 - MAX_REGRESSION)
            ));
        }
        verdicts
            .push(format!("{label}: ok, {value:.1} vs baseline {base:.1} ({:.0}%)", 100.0 * ratio));
    }
    Ok(verdicts)
}

/// The smoke-mode arm of `--check-baseline`: a tiny workload measures
/// nothing, but CI can still fail if the committed baseline lost any of
/// the numbers the full run guards.
fn validate_baseline_structure(baseline: Option<&str>) -> Result<String, String> {
    let Some(doc) = baseline else {
        return Err("no committed BENCH_campaign.json to validate".to_string());
    };
    let mut missing = Vec::new();
    if starsense_bench::json_number(doc, &["host_threads"]).is_none() {
        missing.push("host_threads".to_string());
    }
    for (path, _) in GUARDED_METRICS {
        if starsense_bench::json_number(doc, path).is_none() {
            missing.push(path.join("."));
        }
    }
    // The parallel-speedup fields the multi-thread assertion scores, and
    // every declared sweep point: a sweep entry silently dropped from the
    // emitter should fail CI even on narrow smoke hosts.
    for path in [&["oracle", "speedup"][..], &["identified", "speedup"][..]] {
        if starsense_bench::json_number(doc, path).is_none() {
            missing.push(path.join("."));
        }
    }
    for spec in SCALING_SWEEP {
        let key = format!("t{}", spec.terminals);
        let cohort = ["terminal_scaling", key.as_str(), "cohort_slot_terminals_per_sec"];
        if starsense_bench::json_number(doc, &cohort).is_none() {
            missing.push(cohort.join("."));
        }
        if spec.per_terminal {
            for field in ["indexed_slot_terminals_per_sec", "cohort_speedup"] {
                let path = ["terminal_scaling", key.as_str(), field];
                if starsense_bench::json_number(doc, &path).is_none() {
                    missing.push(path.join("."));
                }
            }
        }
    }
    if missing.is_empty() {
        Ok("baseline structure ok: all guarded metrics present".to_string())
    } else {
        Err(format!("committed BENCH_campaign.json is missing: {}", missing.join(", ")))
    }
}

fn main() {
    criterion::configure_from_args(std::env::args().skip(1));
    let smoke = criterion::is_smoke();
    let check_baseline = std::env::args().skip(1).any(|a| a == "--check-baseline");
    // Captured before the fresh numbers overwrite it.
    let committed_baseline = std::fs::read_to_string(BENCH_JSON_PATH).ok();

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (oracle_slots, ident_slots, sweep_slots) = if smoke { (6, 4, 6) } else { (1600, 120, 200) };

    let constellation = ConstellationBuilder::starlink_mini().seed(SEED).build();

    println!("campaign bench: host_threads={host_threads} smoke={smoke}");

    let oracle_serial = time_campaign(&constellation, false, 1, oracle_slots);
    let oracle_parallel = time_campaign(&constellation, false, 0, oracle_slots);
    println!(
        "campaign/oracle_{oracle_slots}slots_4terms      serial {oracle_serial:9.1} slots/s   parallel {oracle_parallel:9.1} slots/s   speedup {:.2}x",
        oracle_parallel / oracle_serial
    );

    let ident_serial = time_campaign(&constellation, true, 1, ident_slots);
    let ident_parallel = time_campaign(&constellation, true, 0, ident_slots);
    println!(
        "campaign/identified_{ident_slots}slots_4terms   serial {ident_serial:9.1} slots/s   parallel {ident_parallel:9.1} slots/s   speedup {:.2}x",
        ident_parallel / ident_serial
    );

    // Terminal scaling: the declared sweep list, with the large points on
    // the multi-shell gen1 catalog (built once, only when needed).
    let gen1 = SCALING_SWEEP
        .iter()
        .any(|s| s.catalog == SweepCatalog::Gen1)
        .then(|| ConstellationBuilder::starlink_gen1().seed(SEED).build());
    let scaling: Vec<SweepPoint> = SCALING_SWEEP
        .iter()
        .map(|spec| {
            let catalog = match spec.catalog {
                SweepCatalog::Mini => &constellation,
                SweepCatalog::Gen1 => gen1.as_ref().expect("gen1 catalog built above"),
            };
            let slots = if smoke { spec.smoke_slots } else { spec.slots };
            let terminals = if smoke { spec.smoke_terminals } else { spec.terminals };
            SweepPoint {
                spec,
                slots,
                cohort: time_terminal_sweep(catalog, terminals, slots, SweepArm::Cohort),
                indexed: spec
                    .per_terminal
                    .then(|| time_terminal_sweep(catalog, terminals, slots, SweepArm::Indexed)),
                linear: spec
                    .linear
                    .then(|| time_terminal_sweep(catalog, terminals, slots, SweepArm::Linear)),
            }
        })
        .collect();
    for p in &scaling {
        match p.indexed {
            Some(indexed) => println!(
                "scaling/allocate_{}terms_{}slots ({})  cohort {:9.0} slot·terms/s   per-terminal {:9.0} slot·terms/s   cohort speedup {:.2}x{}",
                p.spec.terminals,
                p.slots,
                p.spec.catalog.label(),
                p.cohort,
                indexed,
                p.cohort / indexed,
                p.linear
                    .map(|l| format!("   linear {:.0} slot·terms/s ({:.2}x)", l, indexed / l))
                    .unwrap_or_default(),
            ),
            None => println!(
                "scaling/allocate_{}terms_{}slots ({})  cohort {:9.0} slot·terms/s",
                p.spec.terminals,
                p.slots,
                p.spec.catalog.label(),
                p.cohort
            ),
        }
    }

    let sweep = dtw_sweep(&constellation, sweep_slots);
    let ratio = sweep.cells_pruned as f64 / sweep.cells_full.max(1) as f64;
    println!(
        "dtw/cascade_sweep_{sweep_slots}slots            {} of {} exact cells ({:.1}%) + {} coarse   agreement {}/{}",
        sweep.cells_pruned,
        sweep.cells_full,
        100.0 * ratio,
        sweep.cells_coarse,
        sweep.agreements,
        sweep.queries
    );
    assert_eq!(sweep.agreements, sweep.queries, "cascade matcher must agree with exhaustive scan");

    if smoke {
        if check_baseline {
            match validate_baseline_structure(committed_baseline.as_deref()) {
                Ok(verdict) => println!("{verdict}"),
                Err(problem) => {
                    eprintln!("{problem}");
                    std::process::exit(1);
                }
            }
        }
        println!("smoke mode: skipping BENCH_campaign.json");
        return;
    }

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                r#"    "t{}": {{
      "slots": {},
      "constellation": "{}",
      "cohort_slot_terminals_per_sec": {},
      "indexed_slot_terminals_per_sec": {},
      "linear_slot_terminals_per_sec": {},
      "speedup": {},
      "cohort_speedup": {}
    }}"#,
                p.spec.terminals,
                p.slots,
                p.spec.catalog.label(),
                json_f(p.cohort),
                json_opt(p.indexed),
                json_opt(p.linear),
                json_opt(p.indexed.and_then(|i| p.linear.map(|l| i / l))),
                json_opt(p.indexed.map(|i| p.cohort / i)),
            )
        })
        .collect();

    let json = format!(
        r#"{{
  "workload": {{
    "constellation": "starlink_mini_384sats",
    "terminals": 4,
    "oracle_slots": {oracle_slots},
    "identified_slots": {ident_slots},
    "dtw_sweep_slots": {sweep_slots},
    "seed": {SEED}
  }},
  "host_threads": {host_threads},
  "oracle": {{
    "serial_slots_per_sec": {},
    "parallel_slots_per_sec": {},
    "speedup": {}
  }},
  "identified": {{
    "serial_slots_per_sec": {},
    "parallel_slots_per_sec": {},
    "speedup": {}
  }},
  "dtw": {{
    "cells_full": {},
    "cells_pruned": {},
    "cells_coarse": {},
    "ratio": {},
    "queries": {},
    "agreement": {}
  }},
  "terminal_scaling": {{
{}
  }}
}}
"#,
        json_f(oracle_serial),
        json_f(oracle_parallel),
        json_f(oracle_parallel / oracle_serial),
        json_f(ident_serial),
        json_f(ident_parallel),
        json_f(ident_parallel / ident_serial),
        sweep.cells_full,
        sweep.cells_pruned,
        sweep.cells_coarse,
        json_f(ratio),
        sweep.queries,
        json_f(sweep.agreements as f64 / sweep.queries.max(1) as f64),
        scaling_json.join(",\n"),
    );
    std::fs::write(BENCH_JSON_PATH, json).expect("write BENCH_campaign.json");
    println!("wrote {BENCH_JSON_PATH}");

    if check_baseline {
        let indexed_at = |terminals: usize| {
            scaling
                .iter()
                .find(|p| p.spec.terminals == terminals)
                .and_then(|p| p.indexed)
                .unwrap_or(0.0)
        };
        let fresh =
            [oracle_serial, ident_serial, indexed_at(256), indexed_at(1_000), indexed_at(10_000)];
        match check_against_baseline(committed_baseline.as_deref(), &fresh, host_threads) {
            Ok(verdicts) => {
                for v in verdicts {
                    println!("{v}");
                }
            }
            Err(regression) => {
                eprintln!("{regression}");
                std::process::exit(1);
            }
        }

        // The point of the sharded engine: on a genuinely multi-core host
        // the identified campaign must beat its own serial run by 1.5x.
        // Narrower hosts cannot score this, so they say so instead.
        let speedup = ident_parallel / ident_serial;
        if host_threads >= SPEEDUP_HOST_THREADS {
            if speedup < MIN_PARALLEL_SPEEDUP {
                eprintln!(
                    "identified parallel speedup {speedup:.2}x below the required \
                     {MIN_PARALLEL_SPEEDUP:.1}x on a {host_threads}-thread host"
                );
                std::process::exit(1);
            }
            println!(
                "identified parallel speedup: ok, {speedup:.2}x >= {MIN_PARALLEL_SPEEDUP:.1}x"
            );
        } else {
            println!(
                "identified parallel speedup check skipped: host_threads={host_threads} < \
                 {SPEEDUP_HOST_THREADS} (measured {speedup:.2}x)"
            );
        }

        // The headline claim of this sweep: at 10 000 terminals the cohort
        // engine must beat the frozen per-terminal reference by 2x. The
        // ratio is single-threaded by construction, but narrow hosts are
        // typically noisy shared runners, so they report instead of gate.
        let cohort_speedup = scaling
            .iter()
            .find(|p| p.spec.terminals == 10_000)
            .and_then(|p| p.indexed.map(|i| p.cohort / i));
        match cohort_speedup {
            Some(ratio) if host_threads >= SPEEDUP_HOST_THREADS => {
                if ratio < MIN_COHORT_SPEEDUP {
                    eprintln!(
                        "10000-terminal cohort speedup {ratio:.2}x below the required \
                         {MIN_COHORT_SPEEDUP:.1}x"
                    );
                    std::process::exit(1);
                }
                println!(
                    "10000-terminal cohort speedup: ok, {ratio:.2}x >= {MIN_COHORT_SPEEDUP:.1}x"
                );
            }
            Some(ratio) => println!(
                "10000-terminal cohort speedup check skipped: host_threads={host_threads} < \
                 {SPEEDUP_HOST_THREADS} (measured {ratio:.2}x)"
            ),
            None => println!("10000-terminal cohort speedup unavailable: reference arm not run"),
        }
    }
}
