//! Ablation cost benches: the per-slot cost of the hidden global scheduler
//! under each policy variant DESIGN.md calls out, plus the cost of the GSO
//! geometry itself.
//!
//! (The *effect* of each ablation on the paper's findings is measured by
//! the `tab_ablation` experiment binary; these benches track what each
//! policy term costs in scheduler time.)

use criterion::{criterion_group, criterion_main, Criterion};
use starsense_astro::frames::{Geodetic, LookAngles};
use starsense_astro::time::JulianDate;
use starsense_constellation::ConstellationBuilder;
use starsense_core::vantage::paper_terminals;
use starsense_scheduler::{GlobalScheduler, GsoExclusion, SchedulerPolicy};
use std::hint::black_box;

fn bench_scheduler_variants(c: &mut Criterion) {
    let constellation = ConstellationBuilder::starlink_mini().seed(5).build();
    let at = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 5.0);

    let variants: Vec<(&str, SchedulerPolicy)> = vec![
        ("full", SchedulerPolicy::default()),
        (
            "no_gso",
            SchedulerPolicy {
                gso_half_angle_deg: None,
                w_gso_margin: 0.0,
                ..SchedulerPolicy::default()
            },
        ),
        ("no_elevation", SchedulerPolicy { w_elevation: 0.0, ..SchedulerPolicy::default() }),
    ];

    let mut g = c.benchmark_group("scheduler_allocate_mini");
    for (name, policy) in variants {
        g.bench_function(name, |b| {
            let mut sched = GlobalScheduler::new(policy.clone(), paper_terminals(), 5);
            b.iter(|| black_box(sched.allocate(&constellation, black_box(at))))
        });
    }
    g.finish();
}

fn bench_gso(c: &mut Criterion) {
    let iowa = Geodetic::new(41.66, -91.53, 0.2);
    c.bench_function("gso/build_site_zone", |b| {
        b.iter(|| black_box(GsoExclusion::for_site(black_box(iowa), 12.0)))
    });
    let zone = GsoExclusion::for_site(iowa, 12.0);
    let look = LookAngles { elevation_deg: 42.0, azimuth_deg: 180.0, range_km: 900.0 };
    c.bench_function("gso/excludes_query", |b| {
        b.iter(|| black_box(zone.excludes(black_box(&look))))
    });
    c.bench_function("gso/separation_query", |b| {
        b.iter(|| black_box(zone.separation_deg(black_box(&look))))
    });
}

criterion_group!(benches, bench_scheduler_variants, bench_gso);
criterion_main!(benches);
