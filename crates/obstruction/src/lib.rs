//! Obstruction maps: the dish-side data source of the paper's
//! satellite-identification technique (§4).
//!
//! A Starlink terminal exposes, over its gRPC API, a 123×123-pixel bitmap
//! that marks the sky trajectory of every satellite that has served the
//! terminal since the last reset. §4.1 of the paper reverse-engineers the
//! bitmap's geometry: it is a polar plot centered in the image, radius 45
//! pixels, where radius encodes angle of elevation (90° at the center, 25°
//! at the rim — the minimum connection elevation) and the polar angle
//! encodes azimuth, 0° at north, increasing clockwise.
//!
//! This crate implements that raster:
//!
//! * [`ObstructionMap`] — the bitmap with polar↔pixel conversions,
//! * [`paint()`] — painting a served-satellite trajectory the way the dish
//!   firmware does (line segments between consecutive observations),
//! * [`isolate`] — the XOR trick of §4.1 that recovers the single
//!   trajectory added during the latest 15-second slot,
//! * [`extract`] — turning the isolated pixels back into an ordered
//!   sequence of (AOE, azimuth) samples,
//! * [`SkyMask`] — environmental obstructions (the Ithaca tree line),
//! * [`calibrate()`] — the bounding-box parameter-recovery procedure the
//!   authors ran on a 2-day saturated map,
//! * [`render`] — PGM/ASCII output for Figure 3 reproductions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod extract;
pub mod map;
pub mod mask;
pub mod paint;
pub mod render;

pub use calibrate::{calibrate, Calibration};
pub use extract::{extract_trajectory, isolate, largest_component, PolarSample};
pub use map::{ObstructionMap, MAP_SIZE, PLOT_RADIUS_PX};
pub use mask::{MaskSector, SkyMask};
pub use paint::paint;
