//! The obstruction-map bitmap and its polar-plot geometry.

/// Side length of the obstruction map in pixels (the gRPC maps are 123×123).
pub const MAP_SIZE: usize = 123;

/// Radius of the contained polar plot in pixels (recovered in §4.1).
pub const PLOT_RADIUS_PX: f64 = 45.0;

/// Angle of elevation at the rim of the plot, degrees (the minimum
/// connection elevation).
pub const RIM_ELEVATION_DEG: f64 = 25.0;

/// Angle of elevation at the center of the plot, degrees (zenith).
pub const CENTER_ELEVATION_DEG: f64 = 90.0;

/// Pixel coordinate (x = column, y = row) of the plot center.
///
/// The 123-pixel image centers the plot at index 61 (0-based), which the
/// paper reports as "62×62" in 1-based pixel coordinates.
pub const CENTER_PX: f64 = 61.0;

/// Number of `u64` words backing the 123×123 bitmap.
const WORDS: usize = (MAP_SIZE * MAP_SIZE + 63) / 64;

/// Squared pixel radius of the "inside the polar plot" test. The float
/// predicate is `sqrt(dx² + dy²) ≤ PLOT_RADIUS_PX + 0.5` with integer
/// `dx`/`dy`, which is exactly `dx² + dy² ≤ ⌊45.5²⌋` in integers (the
/// equivalence is asserted by `in_plot_mask_matches_float_predicate`).
const IN_PLOT_LIMIT_SQ: i64 = ((PLOT_RADIUS_PX + 0.5) * (PLOT_RADIUS_PX + 0.5)) as i64;

/// Builds the precomputed word mask of in-plot pixels at compile time.
const fn build_in_plot_mask() -> [u64; WORDS] {
    let center = CENTER_PX as i64;
    let mut mask = [0u64; WORDS];
    let mut y = 0;
    while y < MAP_SIZE {
        let mut x = 0;
        while x < MAP_SIZE {
            let dx = x as i64 - center;
            let dy = y as i64 - center;
            if dx * dx + dy * dy <= IN_PLOT_LIMIT_SQ {
                let i = y * MAP_SIZE + x;
                mask[i / 64] |= 1u64 << (i % 64);
            }
            x += 1;
        }
        y += 1;
    }
    mask
}

/// Word mask of pixels inside the polar plot, for masked popcounts.
const IN_PLOT_MASK: [u64; WORDS] = build_in_plot_mask();

const fn count_mask_bits(mask: &[u64; WORDS]) -> usize {
    let mut total = 0usize;
    let mut i = 0;
    while i < WORDS {
        total += mask[i].count_ones() as usize;
        i += 1;
    }
    total
}

/// Number of pixels inside the polar plot (the `fill_fraction` denominator).
const IN_PLOT_COUNT: usize = count_mask_bits(&IN_PLOT_MASK);

/// A 123×123 1-bit obstruction map.
///
/// Bit semantics follow the dish: a set pixel means "a serving satellite's
/// trajectory passed through this sky direction since the last reset".
///
/// The raster is stored packed, 64 pixels per `u64` word in row-major
/// order, so the §4.1 bulk operations are word-parallel: [`xor`] and
/// [`or`](ObstructionMap::or) combine 64 pixels per instruction,
/// [`count_set`](ObstructionMap::count_set) is a popcount sweep, and
/// [`set_pixels`](ObstructionMap::set_pixels) walks set bits by
/// trailing-zero counts instead of scanning every pixel. Bits past the last
/// pixel are always zero, which keeps derived `Eq` exact.
///
/// [`xor`]: ObstructionMap::xor
#[derive(Clone, PartialEq, Eq)]
pub struct ObstructionMap {
    words: [u64; WORDS],
}

impl std::fmt::Debug for ObstructionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObstructionMap({} set pixels)", self.count_set())
    }
}

impl ObstructionMap {
    /// A blank map (freshly reset terminal).
    pub fn new() -> ObstructionMap {
        ObstructionMap { words: [0; WORDS] }
    }

    /// Number of `u64` words in the packed raster, the length
    /// [`ObstructionMap::words`] returns and
    /// [`ObstructionMap::from_words`] requires.
    pub const WORD_COUNT: usize = WORDS;

    /// The packed raster, 64 row-major pixels per word — the export half
    /// of checkpointing a map.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a map from words exported by [`ObstructionMap::words`].
    ///
    /// Returns `None` when `words` has the wrong length or sets bits past
    /// the last pixel — the class introduced only by corruption, and one
    /// that would otherwise break the "tail bits stay zero" invariant the
    /// derived `Eq` relies on.
    pub fn from_words(words: &[u64]) -> Option<ObstructionMap> {
        let arr: [u64; WORDS] = words.try_into().ok()?;
        let tail_bits = WORDS * 64 - MAP_SIZE * MAP_SIZE;
        if tail_bits > 0 && arr[WORDS - 1] >> (64 - tail_bits) != 0 {
            return None;
        }
        Some(ObstructionMap { words: arr })
    }

    /// Reads a pixel. Out-of-bounds reads return `false`.
    pub fn get(&self, x: usize, y: usize) -> bool {
        if x >= MAP_SIZE || y >= MAP_SIZE {
            return false;
        }
        let i = y * MAP_SIZE + x;
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes a pixel. Out-of-bounds writes are ignored (the dish clips the
    /// trail at the rim of the image the same way).
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        if x >= MAP_SIZE || y >= MAP_SIZE {
            return;
        }
        let i = y * MAP_SIZE + x;
        let bit = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= bit;
        } else {
            self.words[i / 64] &= !bit;
        }
    }

    /// Number of set pixels.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the coordinates of all set pixels, row-major.
    pub fn set_pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let i = wi * 64 + bit;
                Some((i % MAP_SIZE, i / MAP_SIZE))
            })
        })
    }

    /// Pixel-wise XOR: the §4.1 isolation primitive. Trajectories present
    /// in both maps cancel, leaving only what changed between the slots.
    pub fn xor(&self, other: &ObstructionMap) -> ObstructionMap {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w ^= o;
        }
        ObstructionMap { words }
    }

    /// Pixel-wise OR, used to accumulate multi-day saturated maps.
    pub fn or(&self, other: &ObstructionMap) -> ObstructionMap {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        ObstructionMap { words }
    }

    /// Fraction of pixels *inside the polar plot* that are set — the
    /// "fill level" of the map. A 2-day run without resets drives this
    /// towards the visible-sky coverage.
    ///
    /// The in-plot membership test is a precomputed word mask, so this is a
    /// masked popcount — no per-pixel geometry.
    pub fn fill_fraction(&self) -> f64 {
        let set: usize = self
            .words
            .iter()
            .zip(IN_PLOT_MASK.iter())
            .map(|(w, m)| (w & m).count_ones() as usize)
            .sum();
        set as f64 / IN_PLOT_COUNT as f64
    }

    /// Converts a sky direction to the pixel it paints.
    ///
    /// Returns `None` below the rim elevation (such directions are outside
    /// the plot and are never painted by the dish).
    pub fn polar_to_pixel(elevation_deg: f64, azimuth_deg: f64) -> Option<(usize, usize)> {
        if elevation_deg < RIM_ELEVATION_DEG || elevation_deg > CENTER_ELEVATION_DEG {
            return None;
        }
        let r = (CENTER_ELEVATION_DEG - elevation_deg) / (CENTER_ELEVATION_DEG - RIM_ELEVATION_DEG)
            * PLOT_RADIUS_PX;
        let az = azimuth_deg.to_radians();
        // North (az 0) is up, i.e. −y in image coordinates; east is +x.
        let x = CENTER_PX + r * az.sin();
        let y = CENTER_PX - r * az.cos();
        let xi = x.round();
        let yi = y.round();
        if !(0.0..MAP_SIZE as f64).contains(&xi) || !(0.0..MAP_SIZE as f64).contains(&yi) {
            return None;
        }
        Some((xi as usize, yi as usize))
    }

    /// Converts a pixel back to a sky direction — the inverse used by the
    /// identification pipeline (§4.1 "for each isolated satellite
    /// trajectory, we compute the AOE and Azimuth for each individual
    /// pixel").
    ///
    /// Returns `None` for pixels outside the polar plot.
    pub fn pixel_to_polar(x: usize, y: usize) -> Option<(f64, f64)> {
        let dx = x as f64 - CENTER_PX;
        let dy = y as f64 - CENTER_PX;
        let r = (dx * dx + dy * dy).sqrt();
        if r > PLOT_RADIUS_PX + 0.5 {
            return None;
        }
        let elevation =
            CENTER_ELEVATION_DEG - r / PLOT_RADIUS_PX * (CENTER_ELEVATION_DEG - RIM_ELEVATION_DEG);
        // atan2(east, north) with image y pointing down.
        let azimuth = dx.atan2(-dy).to_degrees().rem_euclid(360.0);
        Some((elevation.clamp(RIM_ELEVATION_DEG, CENTER_ELEVATION_DEG), azimuth))
    }
}

impl Default for ObstructionMap {
    fn default() -> Self {
        ObstructionMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_blank() {
        let m = ObstructionMap::new();
        assert_eq!(m.count_set(), 0);
        assert!(!m.get(61, 61));
        assert_eq!(m.fill_fraction(), 0.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = ObstructionMap::new();
        m.set(10, 20, true);
        assert!(m.get(10, 20));
        assert!(!m.get(20, 10));
        m.set(10, 20, false);
        assert!(!m.get(10, 20));
    }

    #[test]
    fn out_of_bounds_is_safe() {
        let mut m = ObstructionMap::new();
        m.set(MAP_SIZE, 0, true);
        m.set(0, MAP_SIZE + 5, true);
        assert_eq!(m.count_set(), 0);
        assert!(!m.get(MAP_SIZE + 1, 3));
    }

    #[test]
    fn zenith_maps_to_center_pixel() {
        let (x, y) = ObstructionMap::polar_to_pixel(90.0, 0.0).unwrap();
        assert_eq!((x, y), (61, 61));
        // Azimuth is irrelevant at zenith.
        let (x2, y2) = ObstructionMap::polar_to_pixel(90.0, 213.0).unwrap();
        assert_eq!((x2, y2), (61, 61));
    }

    #[test]
    fn rim_elevation_maps_to_radius_45() {
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 0.0).unwrap();
        // North at the rim: straight up from center.
        assert_eq!((x, y), (61, 61 - 45));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 90.0).unwrap();
        assert_eq!((x, y), (61 + 45, 61));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 180.0).unwrap();
        assert_eq!((x, y), (61, 61 + 45));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 270.0).unwrap();
        assert_eq!((x, y), (61 - 45, 61));
    }

    #[test]
    fn below_rim_is_outside_the_plot() {
        assert!(ObstructionMap::polar_to_pixel(24.9, 0.0).is_none());
        assert!(ObstructionMap::polar_to_pixel(-5.0, 0.0).is_none());
        assert!(ObstructionMap::polar_to_pixel(90.1, 0.0).is_none());
    }

    #[test]
    fn pixel_polar_round_trip_is_within_quantization() {
        // One pixel ≙ 65°/45 ≈ 1.44° of elevation; allow ~2 pixels of slack.
        for &(el, az) in &[
            (30.0, 10.0),
            (45.0, 123.0),
            (60.0, 250.0),
            (75.0, 359.0),
            (89.0, 42.0),
            (25.5, 180.0),
        ] {
            let (x, y) = ObstructionMap::polar_to_pixel(el, az).unwrap();
            let (el2, az2) = ObstructionMap::pixel_to_polar(x, y).unwrap();
            assert!((el - el2).abs() < 3.0, "elevation {el} → {el2}");
            // Azimuth precision degrades towards the zenith where pixels are
            // angularly huge; scale tolerance by radius.
            let r = (90.0 - el) / 65.0 * 45.0;
            let tol = (60.0 / r.max(1.0)).max(2.0);
            let daz = (az - az2).abs().min(360.0 - (az - az2).abs());
            assert!(daz < tol, "azimuth {az} → {az2} (tol {tol})");
        }
    }

    #[test]
    fn pixels_outside_plot_radius_are_none() {
        assert!(ObstructionMap::pixel_to_polar(0, 0).is_none());
        assert!(ObstructionMap::pixel_to_polar(61, 61).is_some());
        assert!(ObstructionMap::pixel_to_polar(61 + 46, 61).is_none());
    }

    #[test]
    fn xor_cancels_common_pixels() {
        let mut a = ObstructionMap::new();
        let mut b = ObstructionMap::new();
        a.set(5, 5, true);
        a.set(6, 6, true);
        b.set(5, 5, true);
        b.set(7, 7, true);
        let x = a.xor(&b);
        assert!(!x.get(5, 5));
        assert!(x.get(6, 6));
        assert!(x.get(7, 7));
        assert_eq!(x.count_set(), 2);
    }

    #[test]
    fn xor_with_self_is_blank() {
        let mut a = ObstructionMap::new();
        for i in 0..50 {
            a.set(i * 2, i, true);
        }
        assert_eq!(a.xor(&a).count_set(), 0);
    }

    #[test]
    fn or_accumulates() {
        let mut a = ObstructionMap::new();
        let mut b = ObstructionMap::new();
        a.set(1, 1, true);
        b.set(2, 2, true);
        let o = a.or(&b);
        assert!(o.get(1, 1) && o.get(2, 2));
        assert_eq!(o.count_set(), 2);
    }

    #[test]
    fn set_pixels_iterates_in_row_major_order() {
        let mut m = ObstructionMap::new();
        m.set(3, 1, true);
        m.set(2, 1, true);
        m.set(0, 0, true);
        let px: Vec<(usize, usize)> = m.set_pixels().collect();
        assert_eq!(px, vec![(0, 0), (2, 1), (3, 1)]);
    }

    #[test]
    fn fill_fraction_grows_with_coverage() {
        let mut m = ObstructionMap::new();
        for az in 0..360 {
            for el in [30.0, 45.0, 60.0, 75.0] {
                if let Some((x, y)) = ObstructionMap::polar_to_pixel(el, az as f64) {
                    m.set(x, y, true);
                }
            }
        }
        assert!(m.fill_fraction() > 0.1, "fill = {}", m.fill_fraction());
        assert!(m.fill_fraction() < 1.0);
    }

    #[test]
    fn in_plot_mask_matches_float_predicate() {
        // The compile-time mask is built with integer arithmetic; assert it
        // agrees with the float predicate fill_fraction historically used,
        // so a change to the plot constants cannot silently desync them.
        let mut inside = 0usize;
        for y in 0..MAP_SIZE {
            for x in 0..MAP_SIZE {
                let dx = x as f64 - CENTER_PX;
                let dy = y as f64 - CENTER_PX;
                let float_in = (dx * dx + dy * dy).sqrt() <= PLOT_RADIUS_PX + 0.5;
                let i = y * MAP_SIZE + x;
                let mask_in = (IN_PLOT_MASK[i / 64] >> (i % 64)) & 1 == 1;
                assert_eq!(float_in, mask_in, "pixel ({x}, {y})");
                inside += usize::from(float_in);
            }
        }
        assert_eq!(inside, IN_PLOT_COUNT);
    }

    #[test]
    fn tail_bits_stay_zero() {
        // Eq is derived over the words, so bits past the last pixel must
        // never be set by any operation.
        let mut m = ObstructionMap::new();
        for y in 0..MAP_SIZE {
            for x in 0..MAP_SIZE {
                m.set(x, y, true);
            }
        }
        let tail_bits = WORDS * 64 - MAP_SIZE * MAP_SIZE;
        assert_eq!(m.words[WORDS - 1].leading_zeros() as usize, tail_bits);
        assert_eq!(m.count_set(), MAP_SIZE * MAP_SIZE);
        let x = m.xor(&ObstructionMap::new());
        assert_eq!(x, m);
    }

    #[test]
    fn every_strictly_in_plot_pixel_round_trips_exactly() {
        // Satellite-task coverage: pixel → polar → pixel is the identity
        // for every pixel at radius ≤ PLOT_RADIUS_PX. (Pixels in the rim
        // band (45, 45.5] clamp to the rim elevation and may land one pixel
        // inward; they are covered separately below.)
        let mut checked = 0usize;
        for y in 0..MAP_SIZE {
            for x in 0..MAP_SIZE {
                let dx = x as f64 - CENTER_PX;
                let dy = y as f64 - CENTER_PX;
                let r = (dx * dx + dy * dy).sqrt();
                if r > PLOT_RADIUS_PX {
                    continue;
                }
                let (el, az) = ObstructionMap::pixel_to_polar(x, y)
                    .unwrap_or_else(|| panic!("pixel ({x}, {y}) at r {r} must be in plot"));
                assert!((RIM_ELEVATION_DEG..=CENTER_ELEVATION_DEG).contains(&el));
                assert!((0.0..360.0).contains(&az));
                let back = ObstructionMap::polar_to_pixel(el, az)
                    .unwrap_or_else(|| panic!("({el}, {az}) from ({x}, {y}) must map back"));
                assert_eq!(back, (x, y), "round trip moved pixel ({x}, {y})");
                checked += 1;
            }
        }
        // 45-pixel radius disc: π·45² ≈ 6362 pixels.
        assert!(checked > 6000, "only {checked} pixels checked");
    }

    #[test]
    fn rim_band_pixels_round_trip_within_one_pixel() {
        // Pixels with radius in (45, 45.5] are in-plot (the paint raster
        // rounds outward) but clamp to the rim elevation, so the round trip
        // may move one pixel towards the center — never further.
        let mut band = 0usize;
        for y in 0..MAP_SIZE {
            for x in 0..MAP_SIZE {
                let dx = x as f64 - CENTER_PX;
                let dy = y as f64 - CENTER_PX;
                let r = (dx * dx + dy * dy).sqrt();
                if r <= PLOT_RADIUS_PX || r > PLOT_RADIUS_PX + 0.5 {
                    continue;
                }
                let (el, az) = ObstructionMap::pixel_to_polar(x, y).expect("rim band is in plot");
                assert_eq!(el, RIM_ELEVATION_DEG, "rim band clamps to the rim");
                let (bx, by) = ObstructionMap::polar_to_pixel(el, az).expect("rim maps back");
                assert!(
                    bx.abs_diff(x) <= 1 && by.abs_diff(y) <= 1,
                    "rim pixel ({x}, {y}) round-tripped to ({bx}, {by})"
                );
                band += 1;
            }
        }
        assert!(band > 0, "the rim band must contain pixels");
    }

    #[test]
    fn center_and_out_of_plot_edge_cases() {
        // Center pixel: zero radius, azimuth degenerate but defined.
        let (el, az) = ObstructionMap::pixel_to_polar(61, 61).expect("center is in plot");
        assert_eq!(el, CENTER_ELEVATION_DEG);
        // Azimuth is degenerate at zenith (atan2(0, -0) = 180°); any value
        // is acceptable because the radius is zero either way.
        assert!((0.0..360.0).contains(&az));
        assert_eq!(ObstructionMap::polar_to_pixel(el, az), Some((61, 61)));
        // Just outside the rim band and the image corners are out of plot.
        assert!(ObstructionMap::pixel_to_polar(61, 61 + 46).is_none());
        assert!(ObstructionMap::pixel_to_polar(0, 0).is_none());
        assert!(ObstructionMap::pixel_to_polar(MAP_SIZE - 1, MAP_SIZE - 1).is_none());
        // Out-of-bounds pixel coordinates are out of plot, not a panic.
        assert!(ObstructionMap::pixel_to_polar(MAP_SIZE + 7, 61).is_none());
    }

    #[test]
    fn words_round_trip_and_reject_corruption() {
        let mut m = ObstructionMap::new();
        for az in (0..360).step_by(7) {
            if let Some((x, y)) = ObstructionMap::polar_to_pixel(40.0, az as f64) {
                m.set(x, y, true);
            }
        }
        let words = m.words().to_vec();
        assert_eq!(words.len(), ObstructionMap::WORD_COUNT);
        let back = ObstructionMap::from_words(&words).expect("valid words");
        assert_eq!(back, m);

        // Wrong length and tail-bit corruption are both rejected.
        assert!(ObstructionMap::from_words(&words[..words.len() - 1]).is_none());
        let mut tail_set = words.clone();
        tail_set[ObstructionMap::WORD_COUNT - 1] |= 1u64 << 63;
        assert!(ObstructionMap::from_words(&tail_set).is_none());
    }

    /// The seed `Vec<bool>` representation, kept verbatim as the
    /// equivalence oracle for the packed words (including the old `set`
    /// bounds behaviour: out-of-bounds writes ignored).
    struct BoolMap {
        bits: Vec<bool>,
    }

    impl BoolMap {
        fn new() -> BoolMap {
            BoolMap { bits: vec![false; MAP_SIZE * MAP_SIZE] }
        }

        fn get(&self, x: usize, y: usize) -> bool {
            if x >= MAP_SIZE || y >= MAP_SIZE {
                return false;
            }
            self.bits[y * MAP_SIZE + x]
        }

        fn set(&mut self, x: usize, y: usize, value: bool) {
            if x >= MAP_SIZE || y >= MAP_SIZE {
                return;
            }
            self.bits[y * MAP_SIZE + x] = value;
        }

        fn count_set(&self) -> usize {
            self.bits.iter().filter(|&&b| b).count()
        }

        fn set_pixels(&self) -> Vec<(usize, usize)> {
            self.bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| (i % MAP_SIZE, i / MAP_SIZE))
                .collect()
        }

        fn xor(&self, other: &BoolMap) -> BoolMap {
            let bits = self.bits.iter().zip(other.bits.iter()).map(|(&a, &b)| a ^ b).collect();
            BoolMap { bits }
        }

        fn or(&self, other: &BoolMap) -> BoolMap {
            let bits = self.bits.iter().zip(other.bits.iter()).map(|(&a, &b)| a | b).collect();
            BoolMap { bits }
        }

        fn fill_fraction(&self) -> f64 {
            let mut inside = 0usize;
            let mut set = 0usize;
            for y in 0..MAP_SIZE {
                for x in 0..MAP_SIZE {
                    let dx = x as f64 - CENTER_PX;
                    let dy = y as f64 - CENTER_PX;
                    if (dx * dx + dy * dy).sqrt() <= PLOT_RADIUS_PX + 0.5 {
                        inside += 1;
                        if self.get(x, y) {
                            set += 1;
                        }
                    }
                }
            }
            set as f64 / inside as f64
        }
    }

    /// Checks a packed map against the reference model, every observer.
    fn assert_equivalent(packed: &ObstructionMap, model: &BoolMap) {
        assert_eq!(packed.count_set(), model.count_set());
        assert_eq!(packed.set_pixels().collect::<Vec<_>>(), model.set_pixels());
        assert_eq!(packed.fill_fraction().to_bits(), model.fill_fraction().to_bits());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One write op: coordinates deliberately overflow the map so the
        /// out-of-bounds clip is exercised; `v` odd means "set".
        type Op = (usize, usize, u8);

        fn apply(ops: &[Op]) -> (ObstructionMap, BoolMap) {
            let mut packed = ObstructionMap::new();
            let mut model = BoolMap::new();
            for &(x, y, v) in ops {
                packed.set(x, y, v & 1 == 1);
                model.set(x, y, v & 1 == 1);
            }
            (packed, model)
        }

        proptest! {
            #[test]
            fn packed_map_matches_vec_bool_model(
                ops in prop::collection::vec(
                    (0usize..MAP_SIZE + 9, 0usize..MAP_SIZE + 9, 0u8..2), 0..300),
                probes in prop::collection::vec(
                    (0usize..MAP_SIZE + 9, 0usize..MAP_SIZE + 9), 0..50),
            ) {
                let (packed, model) = apply(&ops);
                assert_equivalent(&packed, &model);
                for (x, y) in probes {
                    prop_assert_eq!(packed.get(x, y), model.get(x, y));
                }
            }

            #[test]
            fn packed_xor_and_or_match_vec_bool_model(
                a in prop::collection::vec(
                    (0usize..MAP_SIZE + 9, 0usize..MAP_SIZE + 9, 0u8..2), 0..200),
                b in prop::collection::vec(
                    (0usize..MAP_SIZE + 9, 0usize..MAP_SIZE + 9, 0u8..2), 0..200),
            ) {
                let (pa, ma) = apply(&a);
                let (pb, mb) = apply(&b);
                assert_equivalent(&pa.xor(&pb), &ma.xor(&mb));
                assert_equivalent(&pa.or(&pb), &ma.or(&mb));
                // XOR with self cancels in both representations.
                prop_assert_eq!(pa.xor(&pa).count_set(), 0);
            }
        }
    }
}
