//! The obstruction-map bitmap and its polar-plot geometry.

/// Side length of the obstruction map in pixels (the gRPC maps are 123×123).
pub const MAP_SIZE: usize = 123;

/// Radius of the contained polar plot in pixels (recovered in §4.1).
pub const PLOT_RADIUS_PX: f64 = 45.0;

/// Angle of elevation at the rim of the plot, degrees (the minimum
/// connection elevation).
pub const RIM_ELEVATION_DEG: f64 = 25.0;

/// Angle of elevation at the center of the plot, degrees (zenith).
pub const CENTER_ELEVATION_DEG: f64 = 90.0;

/// Pixel coordinate (x = column, y = row) of the plot center.
///
/// The 123-pixel image centers the plot at index 61 (0-based), which the
/// paper reports as "62×62" in 1-based pixel coordinates.
pub const CENTER_PX: f64 = 61.0;

/// A 123×123 1-bit obstruction map.
///
/// Bit semantics follow the dish: a set pixel means "a serving satellite's
/// trajectory passed through this sky direction since the last reset".
#[derive(Clone, PartialEq, Eq)]
pub struct ObstructionMap {
    bits: Vec<bool>,
}

impl std::fmt::Debug for ObstructionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObstructionMap({} set pixels)", self.count_set())
    }
}

impl ObstructionMap {
    /// A blank map (freshly reset terminal).
    pub fn new() -> ObstructionMap {
        ObstructionMap { bits: vec![false; MAP_SIZE * MAP_SIZE] }
    }

    /// Reads a pixel. Out-of-bounds reads return `false`.
    pub fn get(&self, x: usize, y: usize) -> bool {
        if x >= MAP_SIZE || y >= MAP_SIZE {
            return false;
        }
        self.bits[y * MAP_SIZE + x]
    }

    /// Writes a pixel. Out-of-bounds writes are ignored (the dish clips the
    /// trail at the rim of the image the same way).
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        if x < MAP_SIZE || y < MAP_SIZE {
            if x >= MAP_SIZE || y >= MAP_SIZE {
                return;
            }
            self.bits[y * MAP_SIZE + x] = value;
        }
    }

    /// Number of set pixels.
    pub fn count_set(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterates over the coordinates of all set pixels, row-major.
    pub fn set_pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| (i % MAP_SIZE, i / MAP_SIZE))
    }

    /// Pixel-wise XOR: the §4.1 isolation primitive. Trajectories present
    /// in both maps cancel, leaving only what changed between the slots.
    pub fn xor(&self, other: &ObstructionMap) -> ObstructionMap {
        let bits = self.bits.iter().zip(other.bits.iter()).map(|(&a, &b)| a ^ b).collect();
        ObstructionMap { bits }
    }

    /// Pixel-wise OR, used to accumulate multi-day saturated maps.
    pub fn or(&self, other: &ObstructionMap) -> ObstructionMap {
        let bits = self.bits.iter().zip(other.bits.iter()).map(|(&a, &b)| a | b).collect();
        ObstructionMap { bits }
    }

    /// Fraction of pixels *inside the polar plot* that are set — the
    /// "fill level" of the map. A 2-day run without resets drives this
    /// towards the visible-sky coverage.
    pub fn fill_fraction(&self) -> f64 {
        let mut inside = 0usize;
        let mut set = 0usize;
        for y in 0..MAP_SIZE {
            for x in 0..MAP_SIZE {
                let dx = x as f64 - CENTER_PX;
                let dy = y as f64 - CENTER_PX;
                if (dx * dx + dy * dy).sqrt() <= PLOT_RADIUS_PX + 0.5 {
                    inside += 1;
                    if self.get(x, y) {
                        set += 1;
                    }
                }
            }
        }
        set as f64 / inside as f64
    }

    /// Converts a sky direction to the pixel it paints.
    ///
    /// Returns `None` below the rim elevation (such directions are outside
    /// the plot and are never painted by the dish).
    pub fn polar_to_pixel(elevation_deg: f64, azimuth_deg: f64) -> Option<(usize, usize)> {
        if elevation_deg < RIM_ELEVATION_DEG || elevation_deg > CENTER_ELEVATION_DEG {
            return None;
        }
        let r = (CENTER_ELEVATION_DEG - elevation_deg) / (CENTER_ELEVATION_DEG - RIM_ELEVATION_DEG)
            * PLOT_RADIUS_PX;
        let az = azimuth_deg.to_radians();
        // North (az 0) is up, i.e. −y in image coordinates; east is +x.
        let x = CENTER_PX + r * az.sin();
        let y = CENTER_PX - r * az.cos();
        let xi = x.round();
        let yi = y.round();
        if !(0.0..MAP_SIZE as f64).contains(&xi) || !(0.0..MAP_SIZE as f64).contains(&yi) {
            return None;
        }
        Some((xi as usize, yi as usize))
    }

    /// Converts a pixel back to a sky direction — the inverse used by the
    /// identification pipeline (§4.1 "for each isolated satellite
    /// trajectory, we compute the AOE and Azimuth for each individual
    /// pixel").
    ///
    /// Returns `None` for pixels outside the polar plot.
    pub fn pixel_to_polar(x: usize, y: usize) -> Option<(f64, f64)> {
        let dx = x as f64 - CENTER_PX;
        let dy = y as f64 - CENTER_PX;
        let r = (dx * dx + dy * dy).sqrt();
        if r > PLOT_RADIUS_PX + 0.5 {
            return None;
        }
        let elevation =
            CENTER_ELEVATION_DEG - r / PLOT_RADIUS_PX * (CENTER_ELEVATION_DEG - RIM_ELEVATION_DEG);
        // atan2(east, north) with image y pointing down.
        let azimuth = dx.atan2(-dy).to_degrees().rem_euclid(360.0);
        Some((elevation.clamp(RIM_ELEVATION_DEG, CENTER_ELEVATION_DEG), azimuth))
    }
}

impl Default for ObstructionMap {
    fn default() -> Self {
        ObstructionMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_blank() {
        let m = ObstructionMap::new();
        assert_eq!(m.count_set(), 0);
        assert!(!m.get(61, 61));
        assert_eq!(m.fill_fraction(), 0.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = ObstructionMap::new();
        m.set(10, 20, true);
        assert!(m.get(10, 20));
        assert!(!m.get(20, 10));
        m.set(10, 20, false);
        assert!(!m.get(10, 20));
    }

    #[test]
    fn out_of_bounds_is_safe() {
        let mut m = ObstructionMap::new();
        m.set(MAP_SIZE, 0, true);
        m.set(0, MAP_SIZE + 5, true);
        assert_eq!(m.count_set(), 0);
        assert!(!m.get(MAP_SIZE + 1, 3));
    }

    #[test]
    fn zenith_maps_to_center_pixel() {
        let (x, y) = ObstructionMap::polar_to_pixel(90.0, 0.0).unwrap();
        assert_eq!((x, y), (61, 61));
        // Azimuth is irrelevant at zenith.
        let (x2, y2) = ObstructionMap::polar_to_pixel(90.0, 213.0).unwrap();
        assert_eq!((x2, y2), (61, 61));
    }

    #[test]
    fn rim_elevation_maps_to_radius_45() {
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 0.0).unwrap();
        // North at the rim: straight up from center.
        assert_eq!((x, y), (61, 61 - 45));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 90.0).unwrap();
        assert_eq!((x, y), (61 + 45, 61));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 180.0).unwrap();
        assert_eq!((x, y), (61, 61 + 45));
        let (x, y) = ObstructionMap::polar_to_pixel(25.0, 270.0).unwrap();
        assert_eq!((x, y), (61 - 45, 61));
    }

    #[test]
    fn below_rim_is_outside_the_plot() {
        assert!(ObstructionMap::polar_to_pixel(24.9, 0.0).is_none());
        assert!(ObstructionMap::polar_to_pixel(-5.0, 0.0).is_none());
        assert!(ObstructionMap::polar_to_pixel(90.1, 0.0).is_none());
    }

    #[test]
    fn pixel_polar_round_trip_is_within_quantization() {
        // One pixel ≙ 65°/45 ≈ 1.44° of elevation; allow ~2 pixels of slack.
        for &(el, az) in &[
            (30.0, 10.0),
            (45.0, 123.0),
            (60.0, 250.0),
            (75.0, 359.0),
            (89.0, 42.0),
            (25.5, 180.0),
        ] {
            let (x, y) = ObstructionMap::polar_to_pixel(el, az).unwrap();
            let (el2, az2) = ObstructionMap::pixel_to_polar(x, y).unwrap();
            assert!((el - el2).abs() < 3.0, "elevation {el} → {el2}");
            // Azimuth precision degrades towards the zenith where pixels are
            // angularly huge; scale tolerance by radius.
            let r = (90.0 - el) / 65.0 * 45.0;
            let tol = (60.0 / r.max(1.0)).max(2.0);
            let daz = (az - az2).abs().min(360.0 - (az - az2).abs());
            assert!(daz < tol, "azimuth {az} → {az2} (tol {tol})");
        }
    }

    #[test]
    fn pixels_outside_plot_radius_are_none() {
        assert!(ObstructionMap::pixel_to_polar(0, 0).is_none());
        assert!(ObstructionMap::pixel_to_polar(61, 61).is_some());
        assert!(ObstructionMap::pixel_to_polar(61 + 46, 61).is_none());
    }

    #[test]
    fn xor_cancels_common_pixels() {
        let mut a = ObstructionMap::new();
        let mut b = ObstructionMap::new();
        a.set(5, 5, true);
        a.set(6, 6, true);
        b.set(5, 5, true);
        b.set(7, 7, true);
        let x = a.xor(&b);
        assert!(!x.get(5, 5));
        assert!(x.get(6, 6));
        assert!(x.get(7, 7));
        assert_eq!(x.count_set(), 2);
    }

    #[test]
    fn xor_with_self_is_blank() {
        let mut a = ObstructionMap::new();
        for i in 0..50 {
            a.set(i * 2, i, true);
        }
        assert_eq!(a.xor(&a).count_set(), 0);
    }

    #[test]
    fn or_accumulates() {
        let mut a = ObstructionMap::new();
        let mut b = ObstructionMap::new();
        a.set(1, 1, true);
        b.set(2, 2, true);
        let o = a.or(&b);
        assert!(o.get(1, 1) && o.get(2, 2));
        assert_eq!(o.count_set(), 2);
    }

    #[test]
    fn set_pixels_iterates_in_row_major_order() {
        let mut m = ObstructionMap::new();
        m.set(3, 1, true);
        m.set(2, 1, true);
        m.set(0, 0, true);
        let px: Vec<(usize, usize)> = m.set_pixels().collect();
        assert_eq!(px, vec![(0, 0), (2, 1), (3, 1)]);
    }

    #[test]
    fn fill_fraction_grows_with_coverage() {
        let mut m = ObstructionMap::new();
        for az in 0..360 {
            for el in [30.0, 45.0, 60.0, 75.0] {
                if let Some((x, y)) = ObstructionMap::polar_to_pixel(el, az as f64) {
                    m.set(x, y, true);
                }
            }
        }
        assert!(m.fill_fraction() > 0.1, "fill = {}", m.fill_fraction());
        assert!(m.fill_fraction() < 1.0);
    }
}
