//! Environmental sky masks.
//!
//! §5.1 of the paper found its Ithaca terminal "severely obstructed by
//! trees" to the north-west, which visibly distorted the azimuth preference
//! measured there (9.7% of assignments from the region versus 55.4%
//! elsewhere). To reproduce that finding, terminals can carry a [`SkyMask`]
//! of blocked sectors: the hidden scheduler will not assign a satellite
//! whose line of sight is blocked, exactly like the real system routes
//! around obstructions reported by the dish.

/// A blocked sector of sky: an azimuth range below a cutoff elevation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskSector {
    /// Start azimuth, degrees (inclusive).
    pub az_from_deg: f64,
    /// End azimuth, degrees (exclusive). May wrap past 360 (e.g. 300→30).
    pub az_to_deg: f64,
    /// Sky below this elevation is blocked inside the azimuth range.
    pub max_blocked_elevation_deg: f64,
}

impl MaskSector {
    fn contains_azimuth(&self, az: f64) -> bool {
        if self.az_to_deg - self.az_from_deg >= 360.0 {
            return true; // full-circle sector
        }
        let az = az.rem_euclid(360.0);
        let from = self.az_from_deg.rem_euclid(360.0);
        let to = self.az_to_deg.rem_euclid(360.0);
        if from <= to {
            (from..to).contains(&az)
        } else {
            az >= from || az < to
        }
    }
}

/// A terminal's view of which sky directions are obstructed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkyMask {
    sectors: Vec<MaskSector>,
}

impl SkyMask {
    /// A clear sky: nothing blocked.
    pub fn clear() -> SkyMask {
        SkyMask { sectors: Vec::new() }
    }

    /// Builds a mask from sectors.
    pub fn new(sectors: Vec<MaskSector>) -> SkyMask {
        SkyMask { sectors }
    }

    /// The Ithaca, NY tree line of §5.1: the north-west quadrant blocked up
    /// to a high elevation.
    pub fn ithaca_trees() -> SkyMask {
        SkyMask::new(vec![MaskSector {
            az_from_deg: 270.0,
            az_to_deg: 360.0,
            max_blocked_elevation_deg: 62.0,
        }])
    }

    /// True when the direction is obstructed.
    pub fn blocks(&self, elevation_deg: f64, azimuth_deg: f64) -> bool {
        self.sectors
            .iter()
            .any(|s| s.contains_azimuth(azimuth_deg) && elevation_deg < s.max_blocked_elevation_deg)
    }

    /// True when no sector is defined.
    pub fn is_clear(&self) -> bool {
        self.sectors.is_empty()
    }

    /// Fraction of the (elevation ≥ 25°) sky dome that is blocked,
    /// approximated on a 1°×1° grid weighted by solid angle.
    pub fn blocked_fraction(&self) -> f64 {
        let mut blocked = 0.0;
        let mut total = 0.0;
        for el in 25..90 {
            let w = (el as f64).to_radians().cos(); // band solid-angle weight
            for az in 0..360 {
                total += w;
                if self.blocks(el as f64 + 0.5, az as f64 + 0.5) {
                    blocked += w;
                }
            }
        }
        blocked / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_sky_blocks_nothing() {
        let m = SkyMask::clear();
        assert!(m.is_clear());
        assert!(!m.blocks(30.0, 300.0));
        assert_eq!(m.blocked_fraction(), 0.0);
    }

    #[test]
    fn sector_blocks_low_elevations_only() {
        let m = SkyMask::ithaca_trees();
        assert!(m.blocks(30.0, 300.0));
        assert!(m.blocks(61.0, 359.0));
        assert!(!m.blocks(70.0, 300.0)); // above the trees
        assert!(!m.blocks(30.0, 100.0)); // different direction
    }

    #[test]
    fn azimuth_wrapping_sector() {
        let m = SkyMask::new(vec![MaskSector {
            az_from_deg: 350.0,
            az_to_deg: 10.0,
            max_blocked_elevation_deg: 40.0,
        }]);
        assert!(m.blocks(30.0, 355.0));
        assert!(m.blocks(30.0, 5.0));
        assert!(!m.blocks(30.0, 15.0));
        assert!(!m.blocks(30.0, 345.0));
    }

    #[test]
    fn boundary_azimuths() {
        let m = SkyMask::ithaca_trees();
        assert!(m.blocks(30.0, 270.0)); // inclusive start
        assert!(!m.blocks(30.0, 0.0)); // 360 ≡ 0 is exclusive end
        assert!(m.blocks(30.0, 359.9));
    }

    #[test]
    fn blocked_fraction_is_sane_for_ithaca() {
        let f = SkyMask::ithaca_trees().blocked_fraction();
        // A quadrant blocked below 62°: meaningfully more than a few
        // percent, far less than half the dome.
        assert!((0.1..0.4).contains(&f), "fraction {f}");
    }

    #[test]
    fn full_circle_sector_blocks_everywhere() {
        let m = SkyMask::new(vec![MaskSector {
            az_from_deg: 0.0,
            az_to_deg: 360.0,
            max_blocked_elevation_deg: 90.0,
        }]);
        for az in [0.0, 90.0, 180.0, 270.0, 359.9] {
            assert!(m.blocks(45.0, az), "az {az}");
        }
    }

    #[test]
    fn multiple_sectors_union() {
        let m = SkyMask::new(vec![
            MaskSector { az_from_deg: 0.0, az_to_deg: 90.0, max_blocked_elevation_deg: 30.0 },
            MaskSector { az_from_deg: 180.0, az_to_deg: 270.0, max_blocked_elevation_deg: 50.0 },
        ]);
        assert!(m.blocks(28.0, 45.0));
        assert!(m.blocks(45.0, 200.0));
        assert!(!m.blocks(28.0, 135.0));
        assert!(!m.blocks(35.0, 45.0));
    }
}
