//! XOR isolation and trajectory extraction (§4.1).
//!
//! Given the obstruction map at slot `t` and at slot `t − 1`, the XOR leaves
//! exactly the pixels painted during slot `t` — the trajectory of the
//! satellite that served the terminal in that slot (provided trajectories
//! don't overlap, which the measurement protocol guarantees by resetting
//! the terminal every 10 minutes).
//!
//! The isolated pixels are unordered; DTW matching wants an ordered
//! sequence. We order by connected-component walking when the trail is a
//! clean 8-connected curve, falling back to projection onto the principal
//! axis of the pixel cloud otherwise.

use crate::map::ObstructionMap;

/// One extracted trajectory sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarSample {
    /// Angle of elevation, degrees.
    pub elevation_deg: f64,
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
}

impl PolarSample {
    /// Projects to Cartesian coordinates on the unit hemisphere's ground
    /// plane — the conversion §4.1 applies before computing DTW distances
    /// ("we first need to convert all positions from polar to Cartesian
    /// co-ordinates"). North is +y, east is +x, and the radius shrinks with
    /// elevation like the map's own projection.
    pub fn to_cartesian(self) -> [f64; 2] {
        let r = 90.0 - self.elevation_deg; // zenith-centred polar radius
        let az = self.azimuth_deg.to_radians();
        [r * az.sin(), r * az.cos()]
    }
}

/// The §4.1 isolation step: XOR of consecutive slot maps.
pub fn isolate(prev: &ObstructionMap, curr: &ObstructionMap) -> ObstructionMap {
    prev.xor(curr)
}

/// Finds the largest 8-connected component of set pixels.
///
/// XOR residue (single pixels where an old trail was re-crossed) is
/// discarded this way: the genuine new trajectory is by far the largest
/// component.
pub fn largest_component(map: &ObstructionMap) -> Vec<(usize, usize)> {
    let pixels: Vec<(usize, usize)> = map.set_pixels().collect();
    if pixels.is_empty() {
        return Vec::new();
    }
    let index_of = |p: &(usize, usize)| -> usize { p.1 * crate::map::MAP_SIZE + p.0 };
    let mut visited = vec![false; crate::map::MAP_SIZE * crate::map::MAP_SIZE];
    let mut best: Vec<(usize, usize)> = Vec::new();

    for &start in &pixels {
        if visited[index_of(&start)] {
            continue;
        }
        // BFS flood fill.
        let mut component = Vec::new();
        let mut queue = vec![start];
        visited[index_of(&start)] = true;
        while let Some((x, y)) = queue.pop() {
            component.push((x, y));
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    let (nx, ny) = (nx as usize, ny as usize);
                    if map.get(nx, ny) && !visited[ny * crate::map::MAP_SIZE + nx] {
                        visited[ny * crate::map::MAP_SIZE + nx] = true;
                        queue.push((nx, ny));
                    }
                }
            }
        }
        if component.len() > best.len() {
            best = component;
        }
    }
    best
}

/// Extracts the ordered trajectory from an isolated map: largest component,
/// pixels converted to polar samples, ordered along the trail.
///
/// Returns an empty vector when the map holds no in-plot pixels.
pub fn extract_trajectory(isolated: &ObstructionMap) -> Vec<PolarSample> {
    let component = largest_component(isolated);
    let mut pts: Vec<(usize, usize)> = component
        .into_iter()
        .filter(|&(x, y)| ObstructionMap::pixel_to_polar(x, y).is_some())
        .collect();
    if pts.is_empty() {
        return Vec::new();
    }

    order_along_principal_axis(&mut pts);

    pts.into_iter()
        // Points were filtered to in-plot pixels above, so the conversion
        // succeeds for all of them; filter_map keeps this total anyway.
        .filter_map(|(x, y)| ObstructionMap::pixel_to_polar(x, y))
        .map(|(el, az)| PolarSample { elevation_deg: el, azimuth_deg: az })
        .collect()
}

/// Orders pixels by their projection onto the principal axis of the cloud.
///
/// A satellite pass across the field of view is close to a straight chord
/// in the map projection, so the principal axis orders the trail correctly
/// even when Bresenham painting makes the pixel adjacency ambiguous. The
/// absolute direction (start vs end) is unknowable from a single bitmap —
/// DTW matching is direction-checked by the caller trying both.
fn order_along_principal_axis(pts: &mut [(usize, usize)]) {
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0 as f64).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1 as f64).sum::<f64>() / n;

    // 2×2 covariance.
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for p in pts.iter() {
        let dx = p.0 as f64 - mx;
        let dy = p.1 as f64 - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    // Leading eigenvector of [[sxx, sxy], [sxy, syy]].
    let trace = sxx + syy;
    let det = sxx * syy - sxy * sxy;
    let lambda = trace / 2.0 + (trace * trace / 4.0 - det).max(0.0).sqrt();
    let (ax, ay) = if sxy.abs() > 1e-12 {
        (lambda - syy, sxy)
    } else if sxx >= syy {
        (1.0, 0.0)
    } else {
        (0.0, 1.0)
    };

    pts.sort_by(|a, b| {
        let pa = (a.0 as f64 - mx) * ax + (a.1 as f64 - my) * ay;
        let pb = (b.0 as f64 - mx) * ax + (b.1 as f64 - my) * ay;
        pa.total_cmp(&pb)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paint::paint;

    fn pass(el0: f64, az0: f64, el1: f64, az1: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                (el0 + (el1 - el0) * t, az0 + (az1 - az0) * t)
            })
            .collect()
    }

    #[test]
    fn isolate_recovers_only_the_new_trajectory() {
        let mut prev = ObstructionMap::new();
        paint(&mut prev, &pass(30.0, 10.0, 70.0, 60.0, 15));

        let mut curr = prev.clone();
        paint(&mut curr, &pass(40.0, 200.0, 80.0, 250.0, 15));

        let iso = isolate(&prev, &curr);
        // Every isolated pixel must be in curr but not prev.
        for (x, y) in iso.set_pixels() {
            assert!(curr.get(x, y) && !prev.get(x, y));
        }
        assert!(iso.count_set() > 10);
    }

    #[test]
    fn extract_empty_map_gives_empty_trajectory() {
        assert!(extract_trajectory(&ObstructionMap::new()).is_empty());
    }

    #[test]
    fn extracted_samples_match_painted_pass() {
        let mut m = ObstructionMap::new();
        let truth = pass(30.0, 100.0, 75.0, 160.0, 20);
        paint(&mut m, &truth);
        let traj = extract_trajectory(&m);
        assert!(!traj.is_empty());
        // Each extracted sample should be near the painted chord: check
        // elevation and azimuth stay within the truth's bounding ranges
        // (plus pixel quantization slack).
        for s in &traj {
            assert!((27.0..=78.0).contains(&s.elevation_deg), "el {}", s.elevation_deg);
            assert!((95.0..=165.0).contains(&s.azimuth_deg), "az {}", s.azimuth_deg);
        }
    }

    #[test]
    fn extraction_orders_the_trail_monotonically() {
        let mut m = ObstructionMap::new();
        // A rising pass: elevation strictly increases along the trail.
        paint(&mut m, &pass(28.0, 45.0, 85.0, 50.0, 30));
        let traj = extract_trajectory(&m);
        assert!(traj.len() > 10);
        let first = traj.first().unwrap().elevation_deg;
        let last = traj.last().unwrap().elevation_deg;
        // Order may be reversed (direction is unknowable) but must be
        // monotone end-to-end.
        let (lo, hi) = if first < last { (first, last) } else { (last, first) };
        assert!(hi - lo > 40.0, "trail should span the pass: {lo}..{hi}");
        let mut increasing = 0;
        let mut decreasing = 0;
        for w in traj.windows(2) {
            if w[1].elevation_deg > w[0].elevation_deg {
                increasing += 1;
            } else if w[1].elevation_deg < w[0].elevation_deg {
                decreasing += 1;
            }
        }
        let (dominant, contrary) = if increasing > decreasing {
            (increasing, decreasing)
        } else {
            (decreasing, increasing)
        };
        assert!(
            contrary * 10 <= dominant,
            "ordering is not monotone: {increasing} up vs {decreasing} down"
        );
    }

    #[test]
    fn largest_component_discards_specks() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &pass(30.0, 300.0, 60.0, 340.0, 20)); // real trail
        m.set(61, 61, true); // isolated speck at zenith
        let comp = largest_component(&m);
        assert!(!comp.contains(&(61, 61)));
        assert!(comp.len() >= 15);
    }

    #[test]
    fn cartesian_projection_is_north_up_east_right() {
        let north = PolarSample { elevation_deg: 45.0, azimuth_deg: 0.0 }.to_cartesian();
        assert!(north[0].abs() < 1e-9 && north[1] > 0.0);
        let east = PolarSample { elevation_deg: 45.0, azimuth_deg: 90.0 }.to_cartesian();
        assert!(east[0] > 0.0 && east[1].abs() < 1e-9);
        let zenith = PolarSample { elevation_deg: 90.0, azimuth_deg: 123.0 }.to_cartesian();
        assert!(zenith[0].abs() < 1e-9 && zenith[1].abs() < 1e-9);
    }

    #[test]
    fn two_disjoint_trails_yield_the_bigger_one() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &pass(30.0, 10.0, 40.0, 20.0, 5)); // short
        paint(&mut m, &pass(30.0, 180.0, 80.0, 240.0, 30)); // long
        let traj = extract_trajectory(&m);
        // All samples should belong to the long trail (azimuth ≥ ~170°).
        for s in &traj {
            assert!(s.azimuth_deg > 150.0, "unexpected sample az {}", s.azimuth_deg);
        }
    }
}
