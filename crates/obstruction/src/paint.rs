//! Painting served-satellite trajectories onto the map.
//!
//! The dish records the sky track of the serving satellite as a thin
//! contiguous trail. We reproduce that by converting each (elevation,
//! azimuth) observation to its pixel and joining consecutive observations
//! with Bresenham line segments — without the joining, a 15-second pass
//! sampled at 1 Hz would leave visible gaps near the rim where the
//! satellite moves fastest in pixel space.

use crate::map::ObstructionMap;

/// Paints a trajectory of (elevation°, azimuth°) samples onto `map`.
///
/// Samples below the rim elevation are skipped; the trail is broken there
/// and resumes when the satellite re-enters the plot, exactly like the real
/// maps (which only show the sky above 25°).
pub fn paint(map: &mut ObstructionMap, samples: &[(f64, f64)]) {
    let mut prev: Option<(usize, usize)> = None;
    for &(el, az) in samples {
        match ObstructionMap::polar_to_pixel(el, az) {
            Some(px) => {
                match prev {
                    Some(p) => draw_segment(map, p, px),
                    None => map.set(px.0, px.1, true),
                }
                prev = Some(px);
            }
            None => prev = None,
        }
    }
}

/// Bresenham line between two pixels, inclusive of both endpoints.
fn draw_segment(map: &mut ObstructionMap, from: (usize, usize), to: (usize, usize)) {
    let (mut x0, mut y0) = (from.0 as i64, from.1 as i64);
    let (x1, y1) = (to.0 as i64, to.1 as i64);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x0 >= 0 && y0 >= 0 {
            map.set(x0 as usize, y0 as usize, true);
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_paints_one_pixel() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[(60.0, 45.0)]);
        assert_eq!(m.count_set(), 1);
    }

    #[test]
    fn empty_trajectory_paints_nothing() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[]);
        assert_eq!(m.count_set(), 0);
    }

    #[test]
    fn consecutive_samples_leave_a_connected_trail() {
        let mut m = ObstructionMap::new();
        // A pass sweeping azimuth at fixed elevation near the rim, where
        // pixel motion per sample is largest.
        let samples: Vec<(f64, f64)> = (0..20).map(|i| (30.0, i as f64 * 4.0)).collect();
        paint(&mut m, &samples);
        // Every set pixel must have at least one 8-neighbour also set
        // (no isolated dots in the middle of a trail).
        let pixels: Vec<(usize, usize)> = m.set_pixels().collect();
        assert!(pixels.len() >= 20);
        for &(x, y) in &pixels {
            let mut neighbours = 0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                    if nx >= 0 && ny >= 0 && m.get(nx as usize, ny as usize) {
                        neighbours += 1;
                    }
                }
            }
            assert!(neighbours >= 1, "isolated pixel at ({x},{y})");
        }
    }

    #[test]
    fn trail_breaks_below_the_rim() {
        let mut m = ObstructionMap::new();
        // Pass dips below 25° in the middle: two disjoint trail pieces, and
        // crucially no segment drawn straight across the gap.
        paint(&mut m, &[(30.0, 0.0), (24.0, 10.0), (24.0, 20.0), (30.0, 30.0)]);
        assert_eq!(m.count_set(), 2, "only the two ≥25° endpoints");
    }

    #[test]
    fn segment_endpoints_are_painted() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[(80.0, 0.0), (40.0, 180.0)]);
        let a = ObstructionMap::polar_to_pixel(80.0, 0.0).unwrap();
        let b = ObstructionMap::polar_to_pixel(40.0, 180.0).unwrap();
        assert!(m.get(a.0, a.1));
        assert!(m.get(b.0, b.1));
    }

    #[test]
    fn repainting_is_idempotent() {
        let mut m = ObstructionMap::new();
        let traj = [(50.0, 100.0), (55.0, 110.0), (60.0, 120.0)];
        paint(&mut m, &traj);
        let first = m.count_set();
        paint(&mut m, &traj);
        assert_eq!(m.count_set(), first);
    }

    #[test]
    fn diagonal_bresenham_is_contiguous() {
        let mut m = ObstructionMap::new();
        draw_segment(&mut m, (10, 10), (20, 17));
        // Walk along x: for each column crossed there must be a set pixel.
        for x in 10..=20 {
            let hit = (0..crate::map::MAP_SIZE).any(|y| m.get(x, y));
            assert!(hit, "column {x} empty");
        }
    }
}
