//! Blind recovery of the map's polar-plot parameters (§4.1).
//!
//! The authors did not know the obstruction map's geometry a priori: "By
//! leaving the terminal online consecutively for a 2-day period, we allowed
//! the terminal to connect to satellites from practically all the regions
//! of the sky... Once the 2-d image is completely filled-up, we draw
//! bounding boxes around these trajectories to identify the center and
//! boundaries of the 2-d image."
//!
//! [`calibrate`] implements that procedure: bounding box of all set pixels
//! on a saturated map → center and plot radius. The reproduction uses it
//! both as a regression test of the map geometry and as the first stage of
//! the end-to-end identification pipeline, so that the pipeline never
//! "cheats" by reading the geometry constants directly.

use crate::map::ObstructionMap;

/// Recovered obstruction-map geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Plot center x, pixels.
    pub center_x: f64,
    /// Plot center y, pixels.
    pub center_y: f64,
    /// Plot radius, pixels.
    pub radius_px: f64,
    /// Number of set pixels the calibration was computed from.
    pub support: usize,
}

impl Calibration {
    /// Converts a pixel to (elevation°, azimuth°) under this calibration,
    /// assuming the rim is 25° and the center 90° (the physical connection
    /// limits, which are known independently of the image geometry).
    pub fn pixel_to_polar(&self, x: usize, y: usize) -> Option<(f64, f64)> {
        let dx = x as f64 - self.center_x;
        let dy = y as f64 - self.center_y;
        let r = (dx * dx + dy * dy).sqrt();
        if r > self.radius_px + 0.75 {
            return None;
        }
        let elevation = 90.0 - r / self.radius_px * 65.0;
        let azimuth = dx.atan2(-dy).to_degrees().rem_euclid(360.0);
        Some((elevation.clamp(25.0, 90.0), azimuth))
    }
}

/// Recovers the plot geometry from a saturated map by bounding box.
///
/// Returns `None` when the map is too sparse to calibrate (the bounding box
/// of a single pass says nothing about the full plot; §4.1's two-day fill
/// is what makes the box meaningful). The threshold is conservative: at
/// least 500 set pixels and a reasonably square box.
pub fn calibrate(saturated: &ObstructionMap) -> Option<Calibration> {
    let pixels: Vec<(usize, usize)> = saturated.set_pixels().collect();
    if pixels.len() < 500 {
        return None;
    }

    let min_x = pixels.iter().map(|p| p.0).min()? as f64;
    let max_x = pixels.iter().map(|p| p.0).max()? as f64;
    let min_y = pixels.iter().map(|p| p.1).min()? as f64;
    let max_y = pixels.iter().map(|p| p.1).max()? as f64;

    let width = max_x - min_x;
    let height = max_y - min_y;
    if width < 20.0 || height < 20.0 {
        return None;
    }
    // A saturated polar plot has an essentially square bounding box; a very
    // elongated box means the sky was only partially covered.
    if (width / height).max(height / width) > 1.3 {
        return None;
    }

    Some(Calibration {
        center_x: (min_x + max_x) / 2.0,
        center_y: (min_y + max_y) / 2.0,
        radius_px: (width + height) / 4.0,
        support: pixels.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{CENTER_PX, PLOT_RADIUS_PX};
    use crate::paint::paint;

    /// Simulates a 2-day fill: passes in many directions saturate the plot.
    fn saturated_map() -> ObstructionMap {
        let mut m = ObstructionMap::new();
        for k in 0..180 {
            let az0 = (k * 13 % 360) as f64;
            let az1 = az0 + 120.0;
            let samples: Vec<(f64, f64)> = (0..40)
                .map(|i| {
                    let t = i as f64 / 39.0;
                    // chord across the dome, dipping through various heights
                    let el = 25.0
                        + 60.0
                            * (std::f64::consts::PI * t).sin()
                            * (0.3 + 0.7 * ((k % 7) as f64 / 7.0));
                    (el, az0 + (az1 - az0) * t)
                })
                .collect();
            paint(&mut m, &samples);
        }
        m
    }

    #[test]
    fn calibration_recovers_center_and_radius() {
        let m = saturated_map();
        let c = calibrate(&m).expect("saturated map must calibrate");
        assert!((c.center_x - CENTER_PX).abs() < 2.0, "cx = {}", c.center_x);
        assert!((c.center_y - CENTER_PX).abs() < 2.0, "cy = {}", c.center_y);
        assert!((c.radius_px - PLOT_RADIUS_PX).abs() < 2.5, "r = {}", c.radius_px);
        assert!(c.support > 500);
    }

    #[test]
    fn sparse_map_refuses_to_calibrate() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[(30.0, 10.0), (50.0, 40.0), (70.0, 80.0)]);
        assert!(calibrate(&m).is_none());
    }

    #[test]
    fn blank_map_refuses_to_calibrate() {
        assert!(calibrate(&ObstructionMap::new()).is_none());
    }

    #[test]
    fn elongated_coverage_refuses_to_calibrate() {
        // Only east-west passes at one elevation: a thin band, not a disk.
        let mut m = ObstructionMap::new();
        for rep in 0..60 {
            let el = 29.0 + (rep % 3) as f64;
            let samples: Vec<(f64, f64)> = (0..90).map(|i| (el, 45.0 + i as f64)).collect();
            paint(&mut m, &samples);
        }
        // Either too sparse or too elongated; both must return None.
        assert!(calibrate(&m).is_none());
    }

    #[test]
    fn calibrated_conversion_agrees_with_ground_truth() {
        let m = saturated_map();
        let c = calibrate(&m).unwrap();
        for &(el, az) in &[(40.0, 30.0), (60.0, 200.0), (80.0, 300.0)] {
            let (x, y) = ObstructionMap::polar_to_pixel(el, az).unwrap();
            let (el2, az2) = c.pixel_to_polar(x, y).expect("in-plot pixel");
            assert!((el - el2).abs() < 5.0, "el {el} vs {el2}");
            let daz = (az - az2).abs().min(360.0 - (az - az2).abs());
            assert!(daz < 8.0, "az {az} vs {az2}");
        }
    }
}
