//! Rendering obstruction maps for human inspection (Figure 3).

use crate::map::{ObstructionMap, MAP_SIZE};

/// Renders the map as a binary PGM (P2, ASCII) image string — loadable by
/// any image viewer, used by the Figure 3 experiment binary to emit the
/// slot maps, their XOR, and the 2-day saturated map.
pub fn to_pgm(map: &ObstructionMap) -> String {
    let mut out = String::with_capacity(MAP_SIZE * MAP_SIZE * 2 + 32);
    out.push_str("P2\n");
    out.push_str(&format!("{MAP_SIZE} {MAP_SIZE}\n1\n"));
    for y in 0..MAP_SIZE {
        for x in 0..MAP_SIZE {
            out.push(if map.get(x, y) { '1' } else { '0' });
            out.push(if x + 1 == MAP_SIZE { '\n' } else { ' ' });
        }
    }
    out
}

/// Renders a down-sampled ASCII view (each character covers a 3×3 pixel
/// block) for terminal output: `#` where any pixel in the block is set,
/// `·` for blank sky inside the plot, space outside.
pub fn to_ascii(map: &ObstructionMap) -> String {
    const BLOCK: usize = 3;
    let cells = MAP_SIZE.div_ceil(BLOCK);
    let mut out = String::with_capacity(cells * (cells + 1));
    for cy in 0..cells {
        for cx in 0..cells {
            let mut any_set = false;
            let mut any_inside = false;
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    let (x, y) = (cx * BLOCK + dx, cy * BLOCK + dy);
                    if x >= MAP_SIZE || y >= MAP_SIZE {
                        continue;
                    }
                    if ObstructionMap::pixel_to_polar(x, y).is_some() {
                        any_inside = true;
                    }
                    if map.get(x, y) {
                        any_set = true;
                    }
                }
            }
            out.push(if any_set {
                '#'
            } else if any_inside {
                '\u{b7}' // '·'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out
}

/// Parses a P2 PGM produced by [`to_pgm`] back into a map (testing aid and
/// a way to load maps captured by external tooling).
pub fn from_pgm(text: &str) -> Option<ObstructionMap> {
    let mut tokens = text.split_whitespace();
    if tokens.next()? != "P2" {
        return None;
    }
    let w: usize = tokens.next()?.parse().ok()?;
    let h: usize = tokens.next()?.parse().ok()?;
    let _maxval: u32 = tokens.next()?.parse().ok()?;
    if w != MAP_SIZE || h != MAP_SIZE {
        return None;
    }
    let mut map = ObstructionMap::new();
    for y in 0..h {
        for x in 0..w {
            let v: u32 = tokens.next()?.parse().ok()?;
            if v > 0 {
                map.set(x, y, true);
            }
        }
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paint::paint;

    #[test]
    fn pgm_round_trips() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[(30.0, 0.0), (60.0, 40.0), (80.0, 90.0)]);
        let pgm = to_pgm(&m);
        let back = from_pgm(&pgm).expect("own output must parse");
        assert_eq!(back, m);
    }

    #[test]
    fn pgm_header_is_valid() {
        let pgm = to_pgm(&ObstructionMap::new());
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("123 123"));
        assert_eq!(lines.next(), Some("1"));
    }

    #[test]
    fn from_pgm_rejects_garbage() {
        assert!(from_pgm("not a pgm").is_none());
        assert!(from_pgm("P2\n10 10\n1\n0 0 0").is_none()); // wrong size
        assert!(from_pgm("P5\n123 123\n1\n").is_none()); // wrong magic
    }

    #[test]
    fn ascii_marks_trail_and_plot() {
        let mut m = ObstructionMap::new();
        paint(&mut m, &[(30.0, 0.0), (88.0, 0.0)]);
        let art = to_ascii(&m);
        assert!(art.contains('#'), "trail must appear");
        assert!(art.contains('\u{b7}'), "plot interior must appear");
        assert!(art.starts_with(' '), "corners are outside the plot");
        // 41 cells per row plus newline.
        assert_eq!(art.lines().next().unwrap().chars().count(), 41);
    }
}
