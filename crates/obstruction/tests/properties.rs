//! Property-based tests for the obstruction-map raster.

use proptest::prelude::*;
use starsense_obstruction::{
    extract_trajectory, isolate, paint, MaskSector, ObstructionMap, SkyMask,
};

fn arb_map(max_points: usize) -> impl Strategy<Value = ObstructionMap> {
    prop::collection::vec((25.0f64..90.0, 0.0f64..360.0), 0..max_points).prop_map(|pts| {
        let mut m = ObstructionMap::new();
        for (el, az) in pts {
            if let Some((x, y)) = ObstructionMap::polar_to_pixel(el, az) {
                m.set(x, y, true);
            }
        }
        m
    })
}

proptest! {
    #[test]
    fn polar_pixel_round_trip_stays_within_quantization(
        el in 26.0f64..89.0,
        az in 0.0f64..360.0,
    ) {
        let (x, y) = ObstructionMap::polar_to_pixel(el, az).expect("in range");
        let (el2, az2) = ObstructionMap::pixel_to_polar(x, y).expect("in plot");
        prop_assert!((el - el2).abs() < 3.0, "el {el} → {el2}");
        // Azimuth resolution degrades towards the zenith.
        let r = (90.0 - el) / 65.0 * 45.0;
        let tol = (90.0 / r.max(0.5)).max(2.5);
        let daz = (az - az2).abs().min(360.0 - (az - az2).abs());
        prop_assert!(daz < tol, "az {az} → {az2} (r={r:.1}, tol={tol:.1})");
    }

    #[test]
    fn xor_is_an_involution(a in arb_map(40), b in arb_map(40)) {
        // a ⊕ (a ⊕ b) == b
        let back = a.xor(&a.xor(&b));
        prop_assert_eq!(back, b);
    }

    #[test]
    fn xor_is_commutative(a in arb_map(40), b in arb_map(40)) {
        prop_assert_eq!(a.xor(&b), b.xor(&a));
    }

    #[test]
    fn or_dominates_both_inputs(a in arb_map(40), b in arb_map(40)) {
        let o = a.or(&b);
        prop_assert!(o.count_set() >= a.count_set().max(b.count_set()));
        for (x, y) in a.set_pixels() {
            prop_assert!(o.get(x, y));
        }
    }

    #[test]
    fn isolate_recovers_exactly_the_new_pixels(base in arb_map(60), extra in arb_map(20)) {
        // curr = base ∪ extra; the genuinely new pixels are extra \ base.
        let curr = base.or(&extra);
        let iso = isolate(&base, &curr);
        for (x, y) in iso.set_pixels() {
            prop_assert!(extra.get(x, y) && !base.get(x, y));
        }
        let expected = extra.set_pixels().filter(|&(x, y)| !base.get(x, y)).count();
        prop_assert_eq!(iso.count_set(), expected);
    }

    #[test]
    fn painting_is_idempotent(pts in prop::collection::vec((25.0f64..90.0, 0.0f64..360.0), 1..15)) {
        let mut once = ObstructionMap::new();
        paint(&mut once, &pts);
        let mut twice = once.clone();
        paint(&mut twice, &pts);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn extracted_samples_lie_in_the_plot(m in arb_map(80)) {
        for s in extract_trajectory(&m) {
            prop_assert!((25.0..=90.0).contains(&s.elevation_deg));
            prop_assert!((0.0..360.0).contains(&s.azimuth_deg));
        }
    }

    #[test]
    fn mask_blocks_iff_inside_some_sector(
        from in 0.0f64..360.0,
        width in 1.0f64..180.0,
        cutoff in 26.0f64..89.0,
        el in 25.0f64..90.0,
        az in 0.0f64..360.0,
    ) {
        let mask = SkyMask::new(vec![MaskSector {
            az_from_deg: from,
            az_to_deg: from + width,
            max_blocked_elevation_deg: cutoff,
        }]);
        let in_sector = {
            let rel = (az - from).rem_euclid(360.0);
            rel < width
        };
        prop_assert_eq!(mask.blocks(el, az), in_sector && el < cutoff);
    }

    #[test]
    fn blocked_fraction_monotone_in_cutoff(
        from in 0.0f64..360.0,
        width in 10.0f64..120.0,
        lo in 30.0f64..50.0,
        hi in 55.0f64..85.0,
    ) {
        let f = |cutoff: f64| {
            SkyMask::new(vec![MaskSector {
                az_from_deg: from,
                az_to_deg: from + width,
                max_blocked_elevation_deg: cutoff,
            }])
            .blocked_fraction()
        };
        prop_assert!(f(hi) >= f(lo) - 1e-12);
    }
}
