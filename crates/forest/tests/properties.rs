//! Property-based tests for the forest crate.

use proptest::prelude::*;
use starsense_forest::{
    top_k_accuracy, Dataset, DecisionTree, ForestParams, RandomForest, TreeParams,
};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..5, 10usize..60).prop_flat_map(|(classes, rows)| {
        prop::collection::vec((prop::collection::vec(-10.0f64..10.0, 3), 0usize..classes), rows)
            .prop_map(move |data| {
                let features: Vec<Vec<f64>> = data.iter().map(|(f, _)| f.clone()).collect();
                let labels: Vec<usize> = data.iter().map(|(_, l)| *l).collect();
                Dataset::unnamed(features, labels, classes)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_probabilities_are_distributions(data in arb_dataset()) {
        let tree = DecisionTree::fit(&data, &TreeParams::default(), 1);
        for i in 0..data.len() {
            let p = tree.predict_proba(data.row(i).0);
            prop_assert_eq!(p.len(), data.n_classes());
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn forest_probabilities_are_distributions(data in arb_dataset()) {
        let params = ForestParams { n_trees: 7, ..Default::default() };
        let forest = RandomForest::fit(&data, &params, 1);
        for i in 0..data.len().min(10) {
            let p = forest.predict_proba(data.row(i).0);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn importances_are_normalized_or_zero(data in arb_dataset()) {
        let params = ForestParams { n_trees: 5, ..Default::default() };
        let forest = RandomForest::fit(&data, &params, 2);
        let imp = forest.feature_importances();
        prop_assert_eq!(imp.len(), data.width());
        let total: f64 = imp.iter().sum();
        prop_assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn top_k_accuracy_is_monotone_in_k(data in arb_dataset()) {
        let params = ForestParams { n_trees: 5, ..Default::default() };
        let forest = RandomForest::fit(&data, &params, 3);
        let ranked: Vec<Vec<usize>> =
            (0..data.len()).map(|i| forest.predict_top_k(data.row(i).0, data.n_classes())).collect();
        let truth: Vec<usize> = data.labels().to_vec();
        let mut prev = 0.0;
        for k in 1..=data.n_classes() {
            let acc = top_k_accuracy(&ranked, &truth, k);
            prop_assert!(acc >= prev - 1e-12);
            prev = acc;
        }
        // k = all classes with full-length rankings is always a hit.
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_trees_never_lose_training_accuracy(data in arb_dataset()) {
        let acc = |depth: usize| {
            let tree = DecisionTree::fit(
                &data,
                &TreeParams { max_depth: depth, min_samples_split: 2, ..TreeParams::default() },
                1,
            );
            (0..data.len()).filter(|&i| tree.predict(data.row(i).0) == data.row(i).1).count()
        };
        // Greedy splitting means more depth can only refine leaves.
        prop_assert!(acc(12) >= acc(1));
    }

    #[test]
    fn stratified_folds_partition(data in arb_dataset(), k in 2usize..5) {
        let folds = data.stratified_folds(k, 7);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; data.len()];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), data.len());
            for &i in test { seen[i] += 1; }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
