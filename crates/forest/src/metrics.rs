//! Classification metrics.

/// Plain accuracy: fraction of `predicted[i] == truth[i]`.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return f64::NAN;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / truth.len() as f64
}

/// Top-k accuracy (§6's metric): the fraction of rows whose true class
/// appears among that row's `k` ranked guesses.
///
/// `ranked[i]` holds the model's guesses for row `i`, best first; only the
/// first `k` are considered (shorter lists are used as-is).
pub fn top_k_accuracy(ranked: &[Vec<usize>], truth: &[usize], k: usize) -> f64 {
    assert_eq!(ranked.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return f64::NAN;
    }
    let hits = ranked
        .iter()
        .zip(truth)
        .filter(|(guesses, t)| guesses.iter().take(k).any(|g| g == *t))
        .count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert!(accuracy(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn top_k_grows_with_k() {
        let ranked = vec![vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]];
        let truth = vec![1, 0, 0];
        let a1 = top_k_accuracy(&ranked, &truth, 1);
        let a2 = top_k_accuracy(&ranked, &truth, 2);
        let a3 = top_k_accuracy(&ranked, &truth, 3);
        assert_eq!(a1, 0.0);
        assert_eq!(a2, 2.0 / 3.0);
        assert_eq!(a3, 1.0);
        assert!(a1 <= a2 && a2 <= a3);
    }

    #[test]
    fn top_1_equals_plain_accuracy() {
        let ranked = vec![vec![0], vec![1], vec![2]];
        let truth = vec![0, 2, 2];
        assert_eq!(top_k_accuracy(&ranked, &truth, 1), accuracy(&[0, 1, 2], &truth));
    }

    #[test]
    fn short_guess_lists_are_tolerated() {
        let ranked = vec![vec![0], vec![]];
        let truth = vec![0, 1];
        assert_eq!(top_k_accuracy(&ranked, &truth, 5), 0.5);
    }
}
