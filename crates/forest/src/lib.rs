//! From-scratch decision trees and random forests.
//!
//! §6 of the paper: "We train a random forest model because of its
//! robustness to over-fitting and the explainability of its predictions.
//! We got the parameters of this model using grid-search and five-fold
//! cross-validation." The evaluation uses a top-k accuracy metric and gini
//! feature-importance scores.
//!
//! This crate provides everything that sentence needs, with no external ML
//! dependency:
//!
//! * [`Dataset`] — feature matrix + class labels, with train/test splitting
//!   and stratified k-fold,
//! * [`DecisionTree`] — CART with gini impurity, depth/leaf limits, and
//!   per-split random feature subsetting,
//! * [`RandomForest`] — bootstrap-aggregated trees with probability
//!   averaging, top-k prediction and mean-decrease-impurity importances,
//! * [`cv`] — k-fold cross-validation and grid search,
//! * [`metrics`] — accuracy and top-k accuracy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod tree;

pub use cv::{grid_search, k_fold_cv, GridSearchResult};
pub use dataset::Dataset;
pub use forest::{ForestParams, RandomForest};
pub use metrics::{accuracy, top_k_accuracy};
pub use tree::{DecisionTree, MaxFeatures, TreeParams};
