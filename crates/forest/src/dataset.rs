//! Datasets: feature matrices with class labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A classification dataset.
///
/// Features are dense `f64` rows; labels are class indices `0..n_classes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics when rows are ragged, label/feature counts differ, a label is
    /// `≥ n_classes`, or feature names don't match the width.
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Dataset {
        assert_eq!(features.len(), labels.len(), "one label per row");
        assert!(n_classes > 0, "need at least one class");
        if let Some(first) = features.first() {
            assert!(features.iter().all(|r| r.len() == first.len()), "ragged feature rows");
            assert_eq!(feature_names.len(), first.len(), "one name per feature");
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        Dataset { features, labels, n_classes, feature_names }
    }

    /// Creates a dataset with auto-generated feature names `f0..fN`.
    pub fn unnamed(features: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Dataset {
        let width = features.first().map(|r| r.len()).unwrap_or(0);
        let names = (0..width).map(|i| format!("f{i}")).collect();
        Dataset::new(features, labels, n_classes, names)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per row.
    pub fn width(&self) -> usize {
        self.features.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> (&[f64], usize) {
        (&self.features[i], self.labels[i])
    }

    /// All feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds a sub-dataset from row indices (duplicates allowed — this is
    /// also the bootstrap-sampling primitive).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Shuffled train/holdout split; `train_fraction` of rows go to the
    /// first dataset (the paper: "80% of the data is used to create a
    /// training/testing data-set... the remaining 20%... a holdout
    /// data-set").
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = (self.len() as f64 * train_fraction).round() as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Stratified k-fold indices: returns `k` (train, test) index pairs
    /// where each test fold approximately preserves class proportions.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least two folds");
        let mut rng = StdRng::seed_from_u64(seed);

        // Group indices by class, shuffle within class, deal round-robin.
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut fold_of = vec![0usize; self.len()];
        let mut next_fold = 0usize;
        for class_rows in by_class.iter_mut() {
            class_rows.shuffle(&mut rng);
            for &i in class_rows.iter() {
                fold_of[i] = next_fold;
                next_fold = (next_fold + 1) % k;
            }
        }

        (0..k)
            .map(|f| {
                let test: Vec<usize> = (0..self.len()).filter(|&i| fold_of[i] == f).collect();
                let train: Vec<usize> = (0..self.len()).filter(|&i| fold_of[i] != f).collect();
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let labels = (0..20).map(|i| i % 2).collect();
        Dataset::unnamed(features, labels, 2)
    }

    #[test]
    fn constructor_validates() {
        let d = toy();
        assert_eq!(d.len(), 20);
        assert_eq!(d.width(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.feature_names(), &["f0".to_string(), "f1".to_string()]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let _ = Dataset::unnamed(vec![vec![1.0]], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Dataset::unnamed(vec![vec![1.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Dataset::unnamed(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 1);
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = toy();
        let (train, test) = d.split(0.8, 7);
        assert_eq!(train.len(), 16);
        assert_eq!(test.len(), 4);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy();
        let (a, _) = d.split(0.8, 7);
        let (b, _) = d.split(0.8, 7);
        assert_eq!(a, b);
        let (c, _) = d.split(0.8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn stratified_folds_cover_everything_exactly_once() {
        let d = toy();
        let folds = d.stratified_folds(5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
            // No overlap between train and test.
            for &i in test {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each row in exactly one test fold");
    }

    #[test]
    fn stratified_folds_preserve_class_balance() {
        let d = toy(); // alternating labels, perfectly balanced
        for (_, test) in d.stratified_folds(4, 3) {
            let ones = test.iter().filter(|&&i| d.labels()[i] == 1).count();
            let diff = (2 * ones).abs_diff(test.len());
            assert!(diff <= 1, "fold imbalance: {ones}/{}", test.len());
        }
    }

    #[test]
    fn subset_supports_duplicates() {
        let d = toy();
        let s = d.subset(&[0, 0, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0).0, s.row(1).0);
    }
}
