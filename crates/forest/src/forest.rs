//! Bootstrap-aggregated random forests.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, MaxFeatures, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeParams,
    /// Draw a bootstrap sample per tree (standard random forest) or train
    /// each tree on the full data (pure feature-subsampling ensemble).
    pub bootstrap: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            tree: TreeParams { max_features: MaxFeatures::Sqrt, ..TreeParams::default() },
            bootstrap: true,
        }
    }
}

/// A fitted random forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    feature_names: Vec<String>,
    oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Fits the forest. Deterministic per `(data, params, seed)`.
    ///
    /// When bootstrapping, the out-of-bag accuracy is computed as a side
    /// effect: each row is scored by the trees whose bootstrap sample
    /// missed it, giving a validation estimate without a holdout — the
    /// "robustness to over-fitting" property §6 cites as a reason to pick
    /// random forests.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero trees.
    pub fn fit(data: &Dataset, params: &ForestParams, seed: u64) -> RandomForest {
        RandomForest::fit_with_threads(data, params, seed, 0)
    }

    /// [`RandomForest::fit`] with an explicit worker-thread count for tree
    /// growing: `0` auto-detects from the host, `1` trains inline. Trees
    /// are independent given their bootstrap draws, so the fitted forest —
    /// including its OOB estimate — is bit-identical for every thread
    /// count: all randomness is drawn serially up front in the exact order
    /// the serial implementation consumed it, and OOB votes are summed
    /// serially in tree order to keep float accumulation order fixed.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero trees.
    pub fn fit_with_threads(
        data: &Dataset,
        params: &ForestParams,
        seed: u64,
        threads: usize,
    ) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit a forest on zero rows");
        assert!(params.n_trees > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(seed);

        // Every tree's randomness, pre-drawn in serial stream order.
        let draws: Vec<(u64, Option<Vec<usize>>)> = (0..params.n_trees)
            .map(|k| {
                let tree_seed = rng.random::<u64>() ^ k as u64;
                let indices = params
                    .bootstrap
                    .then(|| (0..data.len()).map(|_| rng.random_range(0..data.len())).collect());
                (tree_seed, indices)
            })
            .collect();

        let fit_one = |&(tree_seed, ref indices): &(u64, Option<Vec<usize>>)| match indices {
            Some(idx) => DecisionTree::fit_on(data, idx, &params.tree, tree_seed),
            None => DecisionTree::fit(data, &params.tree, tree_seed),
        };
        let threads = match threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
        .min(params.n_trees);
        let trees: Vec<DecisionTree> = if threads <= 1 {
            draws.iter().map(fit_one).collect()
        } else {
            let mut indexed: Vec<(usize, DecisionTree)> = Vec::with_capacity(draws.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for worker in 0..threads {
                    let draws = &draws;
                    let fit_one = &fit_one;
                    handles.push(scope.spawn(move || {
                        draws
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(threads)
                            .map(|(k, d)| (k, fit_one(d)))
                            .collect::<Vec<_>>()
                    }));
                }
                for handle in handles {
                    let part = handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                    indexed.extend(part);
                }
            });
            indexed.sort_by_key(|(k, _)| *k);
            indexed.into_iter().map(|(_, t)| t).collect()
        };

        // Per-row OOB vote accumulators, summed serially in tree order so
        // the floating-point accumulation order matches a serial fit.
        let mut oob_votes: Vec<Vec<f64>> = vec![vec![0.0; data.n_classes()]; data.len()];
        let mut any_oob = false;
        for (tree, (_, indices)) in trees.iter().zip(&draws) {
            let Some(indices) = indices else { continue };
            let mut in_bag = vec![false; data.len()];
            for &i in indices {
                in_bag[i] = true;
            }
            for (i, bagged) in in_bag.iter().enumerate() {
                if !bagged {
                    any_oob = true;
                    for (acc, p) in oob_votes[i].iter_mut().zip(tree.predict_proba(data.row(i).0)) {
                        *acc += p;
                    }
                }
            }
        }

        let oob_accuracy = if params.bootstrap && any_oob {
            let mut hits = 0usize;
            let mut voted = 0usize;
            for (i, votes) in oob_votes.iter().enumerate() {
                let total: f64 = votes.iter().sum();
                if total > 0.0 {
                    voted += 1;
                    let predicted = votes
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(c, _)| c)
                        .unwrap_or(0);
                    if predicted == data.row(i).1 {
                        hits += 1;
                    }
                }
            }
            (voted > 0).then(|| hits as f64 / voted as f64)
        } else {
            None
        };

        RandomForest {
            trees,
            n_classes: data.n_classes(),
            feature_names: data.feature_names().to_vec(),
            oob_accuracy,
        }
    }

    /// Out-of-bag accuracy estimate (`None` without bootstrapping, or when
    /// every row landed in every bag).
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Mean class-probability vector across trees.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba(row)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        for a in acc.iter_mut() {
            *a /= n;
        }
        acc
    }

    /// Most likely class.
    pub fn predict(&self, row: &[f64]) -> usize {
        let p = self.predict_proba(row);
        p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
    }

    /// The `k` most likely classes, most probable first — the prediction
    /// form behind the paper's top-k accuracy metric (Figure 8).
    pub fn predict_top_k(&self, row: &[f64], k: usize) -> Vec<usize> {
        let p = self.predict_proba(row);
        let mut idx: Vec<usize> = (0..p.len()).collect();
        idx.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
        idx.truncate(k);
        idx
    }

    /// Normalized gini importances (mean decrease in impurity), one per
    /// feature, summing to 1 — §6's explainability tool.
    pub fn feature_importances(&self) -> Vec<f64> {
        let width = self.feature_names.len();
        let mut acc = vec![0.0; width];
        for t in &self.trees {
            for (a, &v) in acc.iter_mut().zip(t.raw_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }

    /// `(name, importance)` pairs sorted descending — the form the §6
    /// feature-importance table prints.
    pub fn ranked_importances(&self) -> Vec<(String, f64)> {
        let imp = self.feature_importances();
        let mut pairs: Vec<(String, f64)> = self.feature_names.iter().cloned().zip(imp).collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three noisy blobs in 3-D; feature 2 is pure noise.
    fn blobs3() -> Dataset {
        let centers = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]];
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            let j1 = ((i * 31) % 17) as f64 / 17.0 - 0.5;
            let j2 = ((i * 53) % 13) as f64 / 13.0 - 0.5;
            let noise = ((i * 71) % 23) as f64 / 23.0;
            features.push(vec![centers[c][0] + j1, centers[c][1] + j2, noise]);
            labels.push(c);
        }
        Dataset::unnamed(features, labels, 3)
    }

    #[test]
    fn forest_classifies_blobs() {
        let d = blobs3();
        let f = RandomForest::fit(&d, &ForestParams { n_trees: 30, ..Default::default() }, 7);
        let correct = (0..d.len()).filter(|&i| f.predict(d.row(i).0) == d.row(i).1).count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "train accuracy {correct}/150");
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let d = blobs3();
        let p = ForestParams { n_trees: 10, ..Default::default() };
        let a = RandomForest::fit(&d, &p, 3);
        let b = RandomForest::fit(&d, &p, 3);
        for i in 0..d.len() {
            assert_eq!(a.predict_proba(d.row(i).0), b.predict_proba(d.row(i).0));
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let d = blobs3();
        for bootstrap in [true, false] {
            let p = ForestParams { n_trees: 9, bootstrap, ..Default::default() };
            let serial = RandomForest::fit_with_threads(&d, &p, 11, 1);
            let parallel = RandomForest::fit_with_threads(&d, &p, 11, 4);
            assert_eq!(
                serial.oob_accuracy().map(f64::to_bits),
                parallel.oob_accuracy().map(f64::to_bits)
            );
            for i in 0..d.len() {
                let a = serial.predict_proba(d.row(i).0);
                let b = parallel.predict_proba(d.row(i).0);
                let a: Vec<u64> = a.into_iter().map(f64::to_bits).collect();
                let b: Vec<u64> = b.into_iter().map(f64::to_bits).collect();
                assert_eq!(a, b, "row {i} bootstrap {bootstrap}");
            }
            let a: Vec<u64> = serial.feature_importances().into_iter().map(f64::to_bits).collect();
            let b: Vec<u64> =
                parallel.feature_importances().into_iter().map(f64::to_bits).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let d = blobs3();
        let f = RandomForest::fit(&d, &ForestParams { n_trees: 12, ..Default::default() }, 7);
        let p = f.predict_proba(&[2.0, 2.0, 0.5]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_is_ordered_and_contains_top_1() {
        let d = blobs3();
        let f = RandomForest::fit(&d, &ForestParams { n_trees: 12, ..Default::default() }, 7);
        let row = d.row(5).0;
        let top3 = f.predict_top_k(row, 3);
        assert_eq!(top3.len(), 3);
        assert_eq!(top3[0], f.predict(row));
        let p = f.predict_proba(row);
        assert!(p[top3[0]] >= p[top3[1]] && p[top3[1]] >= p[top3[2]]);
        // k beyond the class count clamps.
        assert_eq!(f.predict_top_k(row, 10).len(), 3);
    }

    #[test]
    fn importances_are_normalized_and_rank_noise_last() {
        let d = blobs3();
        let f = RandomForest::fit(&d, &ForestParams { n_trees: 30, ..Default::default() }, 7);
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let ranked = f.ranked_importances();
        assert_eq!(ranked.last().unwrap().0, "f2", "noise feature must rank last: {ranked:?}");
    }

    #[test]
    fn more_trees_do_not_hurt_on_train_data() {
        let d = blobs3();
        let small = RandomForest::fit(&d, &ForestParams { n_trees: 2, ..Default::default() }, 9);
        let big = RandomForest::fit(&d, &ForestParams { n_trees: 40, ..Default::default() }, 9);
        let acc = |f: &RandomForest| {
            (0..d.len()).filter(|&i| f.predict(d.row(i).0) == d.row(i).1).count()
        };
        assert!(acc(&big) + 3 >= acc(&small));
    }

    #[test]
    fn oob_accuracy_tracks_generalization() {
        let d = blobs3();
        let f = RandomForest::fit(&d, &ForestParams { n_trees: 30, ..Default::default() }, 7);
        let oob = f.oob_accuracy().expect("bootstrap forests have OOB");
        // Separable blobs: OOB should be high but it is a genuine
        // held-out estimate, so allow slack below train accuracy.
        assert!(oob > 0.85, "oob {oob}");
        assert!(oob <= 1.0);
    }

    #[test]
    fn no_bootstrap_means_no_oob() {
        let d = blobs3();
        let f = RandomForest::fit(
            &d,
            &ForestParams { n_trees: 5, bootstrap: false, ..Default::default() },
            7,
        );
        assert!(f.oob_accuracy().is_none());
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_data_panics() {
        let d = Dataset::unnamed(vec![], vec![], 2);
        let _ = RandomForest::fit(&d, &ForestParams::default(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let d = blobs3();
        let _ = RandomForest::fit(&d, &ForestParams { n_trees: 0, ..Default::default() }, 1);
    }
}
