//! CART decision trees with gini impurity.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// ⌈√width⌉ random features per split (the random-forest default).
    Sqrt,
    /// A fixed count (clamped to the width).
    Fixed(usize),
}

impl MaxFeatures {
    fn resolve(self, width: usize) -> usize {
        match self {
            MaxFeatures::All => width,
            MaxFeatures::Sqrt => (width as f64).sqrt().ceil() as usize,
            MaxFeatures::Fixed(n) => n.clamp(1, width),
        }
        .max(1)
    }
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// A node with fewer samples becomes a leaf.
    pub min_samples_split: usize,
    /// A split may not create a child smaller than this.
    pub min_samples_leaf: usize,
    /// Feature subsetting per split.
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class probabilities (training-count normalized).
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    /// Un-normalized gini importance accumulated per feature.
    importances: Vec<f64>,
}

/// Gini impurity of a class-count vector.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

impl DecisionTree {
    /// Fits a tree on `data` (uses every row).
    pub fn fit(data: &Dataset, params: &TreeParams, seed: u64) -> DecisionTree {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, params, seed)
    }

    /// Fits a tree on a subset of rows of `data` (the bootstrap entry
    /// point used by [`crate::RandomForest`]).
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        seed: u64,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut importances = vec![0.0; data.width()];
        let mut idx = indices.to_vec();
        let root = grow(data, &mut idx, params, 0, indices.len(), &mut rng, &mut importances);
        DecisionTree { root, n_classes: data.n_classes(), importances }
    }

    /// Class-probability vector for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probs } => return probs.clone(),
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Most likely class for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Number of classes the tree was trained with.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Raw (un-normalized) gini importances, one per feature.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Tree depth (root = 0; a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
}

fn class_counts(data: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in indices {
        counts[data.labels()[i]] += 1;
    }
    counts
}

fn leaf(data: &Dataset, indices: &[usize]) -> Node {
    let counts = class_counts(data, indices);
    let total = indices.len() as f64;
    Node::Leaf { probs: counts.iter().map(|&c| c as f64 / total).collect() }
}

/// The best split found for a node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    /// Weighted child impurity, for the importance bookkeeping.
    n_left: usize,
}

#[allow(clippy::too_many_arguments)]
fn grow(
    data: &Dataset,
    indices: &mut [usize],
    params: &TreeParams,
    depth: usize,
    n_total: usize,
    rng: &mut StdRng,
    importances: &mut [f64],
) -> Node {
    let counts = class_counts(data, indices);
    let node_impurity = gini(&counts, indices.len());

    // Stopping conditions.
    // Gini impurity is non-negative in exact arithmetic; `<=` makes the
    // pure-node stop robust to float rounding without an exact `==`.
    if depth >= params.max_depth || indices.len() < params.min_samples_split || node_impurity <= 0.0
    {
        return leaf(data, indices);
    }

    let Some(best) = find_best_split(data, indices, params, rng) else {
        return leaf(data, indices);
    };

    // Partition indices in place around the split.
    indices.sort_by(|&a, &b| {
        data.features()[a][best.feature].total_cmp(&data.features()[b][best.feature])
    });

    // Mean-decrease-impurity bookkeeping: weight by node share of the tree.
    importances[best.feature] += indices_weight(indices.len(), n_total) * best.gain;

    let (left_idx, right_idx) = indices.split_at_mut(best.n_left);

    let left = grow(data, left_idx, params, depth + 1, n_total, rng, importances);
    let right = grow(data, right_idx, params, depth + 1, n_total, rng, importances);
    Node::Split {
        feature: best.feature,
        threshold: best.threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn indices_weight(n_node: usize, n_total: usize) -> f64 {
    n_node as f64 / n_total as f64
}

fn find_best_split(
    data: &Dataset,
    indices: &[usize],
    params: &TreeParams,
    rng: &mut StdRng,
) -> Option<BestSplit> {
    let width = data.width();
    if width == 0 {
        return None;
    }
    let k = params.max_features.resolve(width);
    let mut feats: Vec<usize> = (0..width).collect();
    feats.shuffle(rng);
    feats.truncate(k);

    let parent_counts = class_counts(data, indices);
    let parent_impurity = gini(&parent_counts, indices.len());
    let n = indices.len();

    let mut best: Option<BestSplit> = None;
    let mut sorted = indices.to_vec();

    for &f in &feats {
        sorted.sort_by(|&a, &b| data.features()[a][f].total_cmp(&data.features()[b][f]));

        // Incremental left/right class counts while sweeping the sorted
        // order; candidate thresholds sit between distinct values.
        let mut left_counts = vec![0usize; data.n_classes()];
        let mut right_counts = parent_counts.clone();

        for cut in 1..n {
            let prev = sorted[cut - 1];
            let label = data.labels()[prev];
            left_counts[label] += 1;
            right_counts[label] -= 1;

            let v_prev = data.features()[prev][f];
            let v_next = data.features()[sorted[cut]][f];
            if v_prev == v_next {
                continue; // cannot split between equal values
            }
            if cut < params.min_samples_leaf || n - cut < params.min_samples_leaf {
                continue;
            }

            let gl = gini(&left_counts, cut);
            let gr = gini(&right_counts, n - cut);
            let weighted = (cut as f64 * gl + (n - cut) as f64 * gr) / n as f64;
            let gain = parent_impurity - weighted;
            if gain > 1e-12 && best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: (v_prev + v_next) / 2.0,
                    gain,
                    n_left: cut,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn blobs() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let jitter = (i % 7) as f64 * 0.05;
            if i % 2 == 0 {
                features.push(vec![0.0 + jitter, 1.0 - jitter]);
                labels.push(0);
            } else {
                features.push(vec![5.0 + jitter, -3.0 + jitter]);
                labels.push(1);
            }
        }
        Dataset::unnamed(features, labels, 2)
    }

    #[test]
    fn separable_data_is_classified_perfectly() {
        let d = blobs();
        let t = DecisionTree::fit(&d, &TreeParams::default(), 1);
        for i in 0..d.len() {
            let (row, label) = d.row(i);
            assert_eq!(t.predict(row), label);
        }
    }

    #[test]
    fn depth_zero_tree_is_a_single_leaf_majority_vote() {
        let d = blobs();
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        let t = DecisionTree::fit(&d, &params, 1);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.depth(), 0);
        let p = t.predict_proba(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12, "balanced data → 50/50 leaf");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = blobs();
        let t = DecisionTree::fit(&d, &TreeParams::default(), 1);
        for i in 0..d.len() {
            let p = t.predict_proba(d.row(i).0);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR: not linearly separable per feature; depth 1 cannot fit it,
        // depth 2 can. A deterministic jitter breaks the exact gini ties
        // that would otherwise stop greedy CART at the root (with perfectly
        // balanced XOR data every marginal split has exactly zero gain).
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let jitter = ((i * 13) % 11) as f64 * 0.004;
            features.push(vec![a as f64 + jitter, b as f64 - jitter]);
            labels.push(a ^ b);
        }
        let d = Dataset::unnamed(features, labels, 2);
        let shallow = DecisionTree::fit(
            &d,
            &TreeParams { max_depth: 1, min_samples_split: 2, ..TreeParams::default() },
            1,
        );
        let deep = DecisionTree::fit(
            &d,
            &TreeParams { max_depth: 8, min_samples_split: 2, ..TreeParams::default() },
            1,
        );
        let acc = |t: &DecisionTree| {
            (0..d.len()).filter(|&i| t.predict(d.row(i).0) == d.row(i).1).count() as f64
                / d.len() as f64
        };
        assert!(acc(&shallow) < 0.8, "depth-1 cannot solve XOR: {}", acc(&shallow));
        // Greedy CART needs a few imbalance-creating splits before the XOR
        // structure becomes visible to gini gain; depth 8 is ample.
        assert!(acc(&deep) >= 0.95, "deep tree should solve XOR: {}", acc(&deep));
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = blobs();
        let params = TreeParams { min_samples_leaf: 10, ..TreeParams::default() };
        let t = DecisionTree::fit(&d, &params, 1);
        // 40 rows with 10-minimum leaves allows at most 4 leaves.
        assert!(t.n_leaves() <= 4, "{} leaves", t.n_leaves());
    }

    #[test]
    fn importances_concentrate_on_informative_features() {
        // Feature 0 carries all the signal; feature 1 is noise.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let noise = ((i * 37) % 100) as f64 / 100.0;
            features.push(vec![if i % 2 == 0 { 0.0 } else { 1.0 }, noise]);
            labels.push(i % 2);
        }
        let d = Dataset::unnamed(features, labels, 2);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 1);
        let imp = t.raw_importances();
        assert!(imp[0] > 10.0 * imp[1].max(1e-12), "importances {imp:?}");
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(9), 9);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Fixed(100).resolve(5), 5);
        assert_eq!(MaxFeatures::Fixed(0).resolve(5), 1);
    }

    #[test]
    fn single_class_data_yields_pure_leaf() {
        let d = Dataset::unnamed(vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 0, 0], 1);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 1);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[10.0]), 0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let d = Dataset::unnamed(vec![vec![1.0]], vec![0], 1);
        let _ = DecisionTree::fit_on(&d, &[], &TreeParams::default(), 1);
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1], 4) - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }
}
