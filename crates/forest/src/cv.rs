//! Cross-validation and grid search.
//!
//! §6: "We got the parameters of this model using grid-search and
//! five-fold cross-validation."

use crate::dataset::Dataset;
use crate::forest::{ForestParams, RandomForest};
use crate::metrics::accuracy;

/// Mean k-fold cross-validated accuracy of a forest configuration.
pub fn k_fold_cv(data: &Dataset, params: &ForestParams, k: usize, seed: u64) -> f64 {
    let folds = data.stratified_folds(k, seed);
    let mut total = 0.0;
    for (fi, (train_idx, test_idx)) in folds.iter().enumerate() {
        let train = data.subset(train_idx);
        let forest = RandomForest::fit(&train, params, seed ^ (fi as u64) << 32);
        let predicted: Vec<usize> =
            test_idx.iter().map(|&i| forest.predict(data.row(i).0)).collect();
        let truth: Vec<usize> = test_idx.iter().map(|&i| data.row(i).1).collect();
        total += accuracy(&predicted, &truth);
    }
    total / folds.len() as f64
}

/// One grid-search candidate's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// The configuration evaluated.
    pub params: ForestParams,
    /// Its mean cross-validated accuracy.
    pub cv_accuracy: f64,
}

/// Evaluates every configuration with k-fold CV and returns all results
/// sorted best-first. The caller refits the winner on the full training
/// split.
pub fn grid_search(
    data: &Dataset,
    grid: &[ForestParams],
    k: usize,
    seed: u64,
) -> Vec<GridSearchResult> {
    assert!(!grid.is_empty(), "empty grid");
    let mut results: Vec<GridSearchResult> = grid
        .iter()
        .map(|p| GridSearchResult { params: *p, cv_accuracy: k_fold_cv(data, p, k, seed) })
        .collect();
    results.sort_by(|a, b| b.cv_accuracy.total_cmp(&a.cv_accuracy));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{MaxFeatures, TreeParams};

    fn blobs() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let j = ((i * 29) % 19) as f64 / 19.0;
            features.push(vec![c as f64 * 3.0 + j, j]);
            labels.push(c);
        }
        Dataset::unnamed(features, labels, 2)
    }

    #[test]
    fn cv_accuracy_is_high_on_separable_data() {
        let d = blobs();
        let p = ForestParams { n_trees: 10, ..Default::default() };
        let acc = k_fold_cv(&d, &p, 5, 1);
        assert!(acc > 0.95, "cv accuracy {acc}");
    }

    #[test]
    fn cv_is_deterministic() {
        let d = blobs();
        let p = ForestParams { n_trees: 5, ..Default::default() };
        assert_eq!(k_fold_cv(&d, &p, 5, 1), k_fold_cv(&d, &p, 5, 1));
    }

    #[test]
    fn grid_search_ranks_configurations() {
        let d = blobs();
        let grid = vec![
            ForestParams {
                n_trees: 1,
                tree: TreeParams {
                    max_depth: 1,
                    max_features: MaxFeatures::Fixed(1),
                    ..TreeParams::default()
                },
                bootstrap: true,
            },
            ForestParams { n_trees: 15, ..Default::default() },
        ];
        let results = grid_search(&d, &grid, 4, 1);
        assert_eq!(results.len(), 2);
        assert!(results[0].cv_accuracy >= results[1].cv_accuracy);
        // The serious configuration should win on this data.
        assert_eq!(results[0].params.n_trees, 15);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let d = blobs();
        let _ = grid_search(&d, &[], 5, 1);
    }
}
