//! Offline, from-scratch drop-in for the subset of the `rand` 0.9 API this
//! workspace uses.
//!
//! The container this repository builds in has no crates-io access, so the
//! workspace vendors the few external crates it needs as minimal
//! re-implementations. This one covers exactly the surface the simulation
//! crates call:
//!
//! * [`rngs::StdRng`] — a seeded, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`] — the only constructor;
//! * [`Rng::random`] and [`Rng::random_range`] — uniform draws over the
//!   primitive integer and float ranges the workspace samples;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! **Deliberately absent:** `thread_rng`, `rand::rng`, `from_entropy`, and
//! every other ambient-entropy source. DESIGN.md §5 requires every figure to
//! be a pure function of explicit seeds; `starlint`'s D-series rules ban the
//! entropy APIs and this shim simply does not provide them, so such code
//! fails to *compile*, not just to lint.
//!
//! The streams produced here are stable across runs and platforms but are
//! **not** bit-compatible with crates-io `rand`; all golden values in the
//! test suite are derived from this implementation.
#![warn(missing_docs)]

/// A generator that can be constructed from a `u64` seed.
///
/// This is the only construction path the workspace permits: an explicit
/// seed, threaded down from a figure's command line or a test.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`. Equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface implemented by [`rngs::StdRng`].
///
/// Mirrors the `rand 0.9` method names (`random`, `random_range`) for the
/// types the workspace draws.
pub trait Rng {
    /// Returns the next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of a primitive type.
    fn random<T: SampleUniformFull>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// Half-open float ranges exclude the upper bound; inclusive float
    /// ranges may return it. Integer ranges use a widening-multiply map,
    /// whose bias is negligible for the range widths used here.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

/// Types that can be drawn uniformly over their whole domain.
pub trait SampleUniformFull {
    /// Draws one value covering the full domain of the type.
    fn sample_full<R: Rng>(rng: &mut R) -> Self;
}

impl SampleUniformFull for u64 {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformFull for u32 {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniformFull for bool {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniformFull for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let u: f64 = f64::sample_full(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on the (excluded) upper bound;
        // nudge back inside.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty inclusive f64 range");
        // 53-bit draw in [0, 1].
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with its 256-bit state expanded from a `u64` seed via SplitMix64.
    ///
    /// Not bit-compatible with crates-io `StdRng` (which is ChaCha12); the
    /// workspace only requires that equal seeds give equal streams.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed; guarantees a non-zero
            // xoshiro state for every seed, including 0.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// Exports the full 256-bit xoshiro state.
        ///
        /// Together with [`StdRng::from_state`] this lets checkpointing code
        /// persist a generator mid-stream and later resume it at exactly the
        /// same position: `from_state(r.state())` continues `r`'s stream
        /// bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state exported by [`StdRng::state`].
        ///
        /// An all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero); `state()` never returns one, but a
        /// corrupted snapshot might, so it is rejected by falling back to
        /// the seeded expansion of 0.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`; a pure function of the
        /// generator state.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
            let w = r.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = r.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn random_draws_full_domain_types() {
        let mut r = StdRng::seed_from_u64(11);
        let _: u64 = r.random();
        let _: u32 = r.random();
        let _: bool = r.random();
        let f: f64 = r.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn state_round_trip_resumes_stream_exactly() {
        let mut reference = StdRng::seed_from_u64(77);
        let mut live = StdRng::seed_from_u64(77);
        for _ in 0..257 {
            let _ = live.next_u64();
            let _ = reference.next_u64();
        }
        let mut resumed = StdRng::from_state(live.state());
        assert_eq!(resumed, live);
        for _ in 0..1000 {
            assert_eq!(resumed.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_all_zero_state() {
        let mut r = StdRng::from_state([0; 4]);
        assert_eq!(r, StdRng::seed_from_u64(0));
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }
}
