//! Offline, from-scratch drop-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build container has no crates-io access, so the workspace vendors its
//! few external dependencies as minimal re-implementations. This crate
//! provides the property-testing surface the test suites call:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies over primitive ints and floats, tuple strategies,
//!   [`collection::vec`], [`sample::select`], [`strategy::Just`],
//! * the [`strategy::Strategy`] combinators `prop_map` and `prop_flat_map`.
//!
//! Two deliberate simplifications relative to crates-io proptest:
//!
//! 1. **Deterministic by construction.** Each test's RNG is seeded from a
//!    hash of its module path and name — never from the OS or the clock —
//!    so a failure reproduces on every run and on every machine. This is
//!    the same discipline DESIGN.md §5 demands of the simulation itself,
//!    and `starlint` D-series rules enforce for simulation crates.
//! 2. **No shrinking.** A failing case reports its case number and
//!    message; since the stream is deterministic, the failing input can be
//!    recovered by re-running. (`*.proptest-regressions` files are unused.)
#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case runner and failure plumbing behind [`proptest!`].

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Per-test configuration. The alias `ProptestConfig` is exported from
    /// the prelude to match crates-io proptest spelling.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The generator handed to strategies. Wraps the workspace's seeded
    /// [`StdRng`]; the seed is a pure function of the test's path.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test path).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label: stable across platforms and runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A single failed property case: the `prop_assert!` message plus the
    /// source location of the assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        /// Human-readable assertion message.
        pub message: String,
        /// Source file of the failed assertion.
        pub file: &'static str,
        /// Source line of the failed assertion.
        pub line: u32,
    }

    impl TestCaseError {
        /// Builds a failure record; called by the `prop_assert!` family.
        pub fn fail(message: String, file: &'static str, line: u32) -> Self {
            TestCaseError { message, file, line }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "{} at {}:{}", self.message, self.file, self.line)
        }
    }

    /// Drives one property: owns the deterministic RNG stream.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// New runner for the test identified by `label`.
        pub fn new(label: &str) -> Self {
            TestRunner { rng: TestRng::from_label(label) }
        }

        /// Draws one value from `strategy`, advancing the stream.
        pub fn draw<S: crate::strategy::Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.generate(&mut self.rng)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait, primitive-range instances, and combinators.

    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike crates-io proptest there is no value tree and no shrinking:
    /// `generate` draws a single concrete value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6, S7 / 7);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6, S7 / 7, S8 / 8);
    impl_tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7,
        S8 / 8,
        S9 / 9
    );
}

pub mod collection {
    //! Strategies for collections (only `Vec`, which is all the suite uses).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit option sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Generates a uniformly chosen clone of one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Declares deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 1.0);
///         prop_assert!((1..20).contains(&v.len()));
///     }
/// }
/// ```
///
/// (In a doctest the generated `#[test]` functions are compiled but not
/// run; the macro's own unit tests below exercise the runtime behaviour.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::test_runner::Config::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr] $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let label = concat!(module_path!(), "::", stringify!($name));
                let mut runner = $crate::test_runner::TestRunner::new(label);
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($arg,)+) = runner.draw(&strategy);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        // starlint: allow(P103, reason = "a failed property must abort the surrounding #[test]; panicking is the contract")
                        panic!(
                            "property `{}` failed on case {}/{} (deterministic seed; rerun reproduces): {}",
                            label,
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case (early-returns an error) if the
/// condition is false. Usable only inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Fails the current property case if the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespace alias matching crates-io proptest's `prelude::prop`.
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn runner_streams_are_deterministic_per_label() {
        let mut a = TestRunner::new("label");
        let mut b = TestRunner::new("label");
        for _ in 0..32 {
            assert_eq!(a.draw(&(0u64..1_000_000)), b.draw(&(0u64..1_000_000)));
        }
        let mut c = TestRunner::new("other label");
        let same =
            (0..32).filter(|_| a.draw(&(0u64..1_000_000)) == c.draw(&(0u64..1_000_000))).count();
        assert!(same < 4, "different labels should diverge");
    }

    #[test]
    fn vec_strategy_respects_size_specs() {
        let mut r = TestRunner::new("sizes");
        for _ in 0..100 {
            assert_eq!(r.draw(&prop::collection::vec(0u32..5, 3)).len(), 3);
            let v = r.draw(&prop::collection::vec(0.0f64..1.0, 2..40));
            assert!((2..40).contains(&v.len()));
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut r = TestRunner::new("select");
        for _ in 0..50 {
            let v = r.draw(&prop::sample::select(vec![1, 5, 9]));
            assert!([1, 5, 9].contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = TestRunner::new("compose");
        let s = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = r.draw(&s);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_in_range(x in 10.0f64..20.0, k in 1u32..=3) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn macro_supports_tuples_and_just(
            pair in (0i64..5, Just(7u8)),
            sel in prop::sample::select(vec![2usize, 4, 6]),
        ) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert_eq!(pair.1, 7u8);
            prop_assert_ne!(sel, 5);
        }
    }

    proptest! {
        fn always_fails_inner(x in 0u32..10) {
            prop_assert!(x < 5, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case_number() {
        always_fails_inner();
    }
}
