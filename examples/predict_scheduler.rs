//! Train the §6 scheduler model: z-score cluster features, a from-scratch
//! random forest with grid-searched 5-fold CV, and Figure 8's top-k
//! comparison against the most-available-cluster baseline.
//!
//! ```sh
//! cargo run --release --example predict_scheduler
//! ```

use starsense::core::model::default_grid;
use starsense::core::report::pct;
use starsense::prelude::*;

fn main() {
    let constellation = ConstellationBuilder::starlink_gen1().seed(23).build();
    let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
    let campaign = Campaign::oracle(&constellation, terminals, CampaignConfig::default(), 23);

    // Ten hours of slots: enough rows for the ~200-cluster label space.
    println!("running the measurement campaign (2400 slots)...");
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
    let observations = campaign.run(from, 2400);

    println!("training (grid search + 5-fold CV, 80/20 holdout)...");
    let eval = train_and_evaluate(&observations, 0, &default_grid(), 23);

    println!(
        "\n{} train rows, {} holdout rows, {} clusters",
        eval.n_train, eval.n_holdout, eval.n_classes
    );
    println!(
        "cross-validated accuracy {} vs holdout top-1 {} (over-fitting check)",
        pct(eval.cv_accuracy),
        pct(eval.holdout_accuracy)
    );

    println!("\n k   RF model   baseline");
    for (i, k) in eval.k_values.iter().enumerate() {
        println!("{k:>2}   {:>8}   {:>8}", pct(eval.rf_top_k[i]), pct(eval.baseline_top_k[i]));
    }
    println!("\npaper @ k=5: RF ≈ 65%, baseline ≈ 22%");

    println!("\ntop features by gini importance:");
    for (name, imp) in eval.importances.iter().take(8) {
        println!("  {name:<14} {imp:.4}");
    }
    println!("(paper: local_hour ≈ 0.04 leads; (x,2,y,z) and (±1,·,−1,1) tuples recur)");
}
