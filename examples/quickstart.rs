//! Quickstart: build a constellation, let the hidden scheduler assign a
//! satellite, and identify that satellite from the obstruction map alone —
//! the paper's core loop in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use starsense::prelude::*;

fn main() {
    // A full-scale synthetic Starlink constellation (~4200 satellites in
    // four Walker shells), deterministic under the seed.
    let constellation = ConstellationBuilder::starlink_gen1().seed(7).build();
    println!("constellation: {} satellites", constellation.len());

    // One terminal in Iowa, served by the hidden global scheduler.
    let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 7);

    // Play two 15-second slots, painting the dish's obstruction map from
    // the scheduler's ground-truth assignments.
    let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 20.0);
    let mut dish = DishSimulator::new(Geodetic::new(41.66, -91.53, 0.2));

    let allocs = scheduler.allocate(&constellation, at);
    let first = &allocs[0];
    println!(
        "slot {}: {} satellites above 25°, scheduler chose {:?}",
        first.slot,
        first.available.len(),
        first.chosen_id()
    );
    let cap1 = dish.play_slot(&constellation, first.slot, first.slot_start, first.chosen_id());

    let next = at.plus_seconds(15.0);
    let allocs = scheduler.allocate(&constellation, next);
    let second = &allocs[0];
    println!("slot {}: scheduler chose {:?}", second.slot, second.chosen_id());
    let cap2 = dish.play_slot(&constellation, second.slot, second.slot_start, second.chosen_id());

    // Now pretend we never saw the scheduler: identify the serving
    // satellite from the two map snapshots and the published (stale) TLEs,
    // exactly as §4 of the paper does against the real network.
    let identified = identify_slot(
        &cap1.map,
        &cap2.map,
        &constellation,
        Geodetic::new(41.66, -91.53, 0.2),
        second.slot_start,
    )
    .expect("a trajectory to match");

    println!(
        "identified satellite {} (DTW distance {:.1}, runner-up {:.1}, {} candidates)",
        identified.norad_id, identified.distance, identified.runner_up, identified.n_candidates
    );
    println!(
        "ground truth was {:?} → {}",
        second.chosen_id(),
        if Some(identified.norad_id) == second.chosen_id() { "correct!" } else { "missed" }
    );
}
