//! Figure-2 style demo: probe a terminal at 1 packet / 20 ms against its
//! PoP and watch the 15-second scheduler regimes and MAC bands appear in
//! the RTT trace.
//!
//! ```sh
//! cargo run --release --example rtt_probe
//! ```

use starsense::netemu::groundstation::paper_pops;
use starsense::prelude::*;
use starsense::stats::{mann_whitney_u, Summary};

fn main() {
    let constellation = ConstellationBuilder::starlink_gen1().seed(11).build();
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), paper_terminals(), 11);
    let mut emulator =
        Emulator::new(&constellation, scheduler, paper_pops(), EmulatorConfig::default(), 11);

    // One minute of probing from the Madrid terminal (the paper's Figure 2
    // is its EU dish).
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 5, 37, 30.0);
    let trace = emulator.probe_trace(2, from, 75.0);
    println!("{} probes sent, {:.2}% lost", trace.records.len(), 100.0 * trace.loss_rate());

    // A terminal-friendly sparkline of the series (one char per ~0.6 s).
    let series = trace.series();
    let glyphs =
        ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}'];
    let lo = series.iter().map(|x| x.1).fold(f64::INFINITY, f64::min);
    let hi = series.iter().map(|x| x.1).fold(f64::NEG_INFINITY, f64::max);
    let spark: String = series
        .chunks(30)
        .map(|chunk| {
            let m = chunk.iter().map(|x| x.1).sum::<f64>() / chunk.len() as f64;
            let idx = ((m - lo) / (hi - lo + 1e-9) * (glyphs.len() - 1) as f64) as usize;
            glyphs[idx.min(glyphs.len() - 1)]
        })
        .collect();
    println!("rtt {lo:.1}–{hi:.1} ms:  {spark}");

    // Per-window summary with the Mann-Whitney verdict against the
    // previous window.
    let windows = trace.windows();
    println!("\nslot windows (boundaries at :12/:27/:42/:57):");
    for pair in windows.windows(2) {
        let (prev, w) = (&pair[0], &pair[1]);
        let Some(s) = Summary::of(&w.rtts) else { continue };
        let verdict = mann_whitney_u(&prev.rtts, &w.rtts)
            .map(|t| if t.is_significant(0.05) { "distinct" } else { "similar" })
            .unwrap_or("n/a");
        println!(
            "  starts :{:02.0}  sat {:>6}  median {:>6.2} ms  vs prev: {}",
            w.start.to_civil().second,
            w.serving_sat.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
            s.median,
            verdict
        );
    }
}
