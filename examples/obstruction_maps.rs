//! Obstruction-map walkthrough: paint a few slots of real scheduler
//! assignments, show the maps as ASCII art, XOR consecutive captures, and
//! recover the plot geometry by the §4.1 bounding-box calibration.
//!
//! ```sh
//! cargo run --release --example obstruction_maps
//! ```

use starsense::obstruction::render::to_ascii;
use starsense::obstruction::{calibrate, isolate};
use starsense::prelude::*;

fn main() {
    let constellation = ConstellationBuilder::starlink_gen1().seed(13).build();
    let location = Geodetic::new(41.66, -91.53, 0.2);
    let terminals = vec![Terminal::new(0, "Iowa", location)];
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 13);
    let mut dish = DishSimulator::new(location);

    // Accumulate a handful of slots.
    let mut captures = Vec::new();
    for k in 0..6 {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 20.0).plus_seconds(15.0 * k as f64);
        let alloc = scheduler.allocate(&constellation, at).swap_remove(0);
        captures.push(dish.play_slot(
            &constellation,
            alloc.slot,
            alloc.slot_start,
            alloc.chosen_id(),
        ));
    }

    let last = captures.last().unwrap();
    println!(
        "map after {} slots ({} px set):\n{}",
        captures.len(),
        last.map.count_set(),
        to_ascii(&last.map)
    );

    let prev = &captures[captures.len() - 2];
    let xor = isolate(&prev.map, &last.map);
    println!("XOR of the final two captures (the new slot's trajectory):\n{}", to_ascii(&xor));

    // Saturate the map (no resets) to run the §4.1 calibration.
    println!("saturating the map (600 more slots, no resets)...");
    let mut sat_dish = DishSimulator::new(location).with_reset_every_slots(0);
    let mut saturated = None;
    for k in 0..600 {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 17, 0, 20.0).plus_seconds(15.0 * k as f64);
        let alloc = scheduler.allocate(&constellation, at).swap_remove(0);
        saturated = Some(sat_dish.play_slot(
            &constellation,
            alloc.slot,
            alloc.slot_start,
            alloc.chosen_id(),
        ));
    }
    let saturated = saturated.unwrap().map;
    println!("fill fraction: {:.1}%", 100.0 * saturated.fill_fraction());

    match calibrate(&saturated) {
        Some(c) => println!(
            "recovered geometry: center ({:.1}, {:.1}) px, radius {:.1} px (truth: 61, 61, 45)",
            c.center_x, c.center_y, c.radius_px
        ),
        None => println!("not yet saturated enough to calibrate — run longer"),
    }
}
