//! Run a four-terminal measurement campaign and re-derive the paper's §5
//! scheduler characterizations (Figures 4–7) from the recorded
//! observations.
//!
//! ```sh
//! cargo run --release --example campaign_characterize
//! ```

use starsense::core::report::pct;
use starsense::prelude::*;

fn main() {
    let constellation = ConstellationBuilder::starlink_gen1().seed(17).build();
    let campaign =
        Campaign::oracle(&constellation, paper_terminals(), CampaignConfig::default(), 17);

    // Two hours of 15-second slots for all four terminals.
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 3, 0, 0.0);
    println!("running 480 slots × 4 terminals...");
    let observations = campaign.run(from, 480);

    for (tid, terminal) in paper_terminals().iter().enumerate() {
        let aoe = aoe_analysis(&observations, tid);
        let az = azimuth_analysis(&observations, tid);
        let launch = launch_analysis(&observations, tid);
        let sun = sunlit_analysis(&observations, tid);

        println!("\n=== {} ===", terminal.name);
        println!(
            "  §5.1 elevation: chosen median {:.1}° vs available {:.1}° (shift {:+.1}°)",
            aoe.chosen_median_deg, aoe.available_median_deg, aoe.median_shift_deg
        );
        println!(
            "  §5.1 azimuth:   {} of picks northern vs {} of availability (NW share {})",
            pct(az.chosen_north),
            pct(az.available_north),
            pct(az.chosen_northwest)
        );
        println!(
            "  §5.2 launches:  Pearson(launch date, pick ratio) = {}",
            launch.pearson.map(|r| format!("{r:.3}")).unwrap_or_else(|| "n/a".into())
        );
        if sun.mixed_slots > 0 {
            println!(
                "  §5.3 sunlit:    picked sunlit in {} of {} mixed slots",
                pct(sun.sunlit_pick_share),
                sun.mixed_slots
            );
        } else {
            println!("  §5.3 sunlit:    no mixed sunlit/dark slots in this window");
        }
    }

    println!(
        "\npaper shape targets: shift ≈ +22.9°, north ≈ 82% vs 58%, Pearson ≈ 0.41, sunlit ≈ 72%"
    );
}
