//! Cross-crate integration: the paper's full loop — hidden scheduler →
//! dish → identification → characterization → model features — executed
//! end to end through the public facade.

use starsense::prelude::*;

fn world() -> (Constellation, Vec<Terminal>) {
    let constellation = ConstellationBuilder::starlink_gen1().seed(99).build();
    (constellation, paper_terminals())
}

#[test]
fn identification_pipeline_recovers_scheduler_assignments() {
    let (constellation, terminals) = world();
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 99);
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 14, 0, 0.0);

    let report = run_validation(&constellation, &mut scheduler, 0, from, 40);
    assert_eq!(report.slots_played, 40);
    assert!(report.attempted >= 25, "attempted {}", report.attempted);
    assert!(
        report.accuracy() > 0.85,
        "end-to-end identification accuracy {:.3}",
        report.accuracy()
    );
}

#[test]
fn campaign_feeds_every_section_five_analysis() {
    let (constellation, terminals) = world();
    let campaign = Campaign::oracle(&constellation, terminals, CampaignConfig::default(), 99);
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 14, 0, 0.0);
    let obs = campaign.run(from, 120);

    for tid in 0..4 {
        let aoe = aoe_analysis(&obs, tid);
        assert!(aoe.median_shift_deg > 5.0, "terminal {tid}: shift {}", aoe.median_shift_deg);

        let az = azimuth_analysis(&obs, tid);
        let total: f64 = az.chosen_quadrants.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "terminal {tid}: quadrants sum {total}");

        let launch = launch_analysis(&obs, tid);
        assert!(launch.bins.len() > 5, "terminal {tid}: {} bins", launch.bins.len());

        let sun = sunlit_analysis(&obs, tid);
        assert!(sun.n_sunlit_chosen + sun.n_dark_chosen > 0, "terminal {tid}: no picks at all");
    }
}

#[test]
fn emulated_probes_expose_the_fifteen_second_regime() {
    use starsense::netemu::groundstation::paper_pops;
    use starsense::stats::mann_whitney_u;

    let (constellation, terminals) = world();
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 99);
    let mut emulator =
        Emulator::new(&constellation, scheduler, paper_pops(), EmulatorConfig::default(), 99);
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 14, 0, 0.0);
    let trace = emulator.probe_trace(0, from, 65.0);

    let windows = trace.windows();
    assert!(windows.len() >= 4, "{} windows in 65 s", windows.len());

    // Boundaries must land on the :12/:27/:42/:57 anchors.
    for w in windows.iter().skip(1) {
        let sec = w.start.to_civil().second.round() as u32 % 60;
        assert!([12, 27, 42, 57].contains(&sec), "boundary at :{sec}");
    }

    // Consecutive full windows with a satellite change are distinct.
    let mut distinct = 0;
    let mut tested = 0;
    for pair in windows.windows(2) {
        if pair[0].rtts.len() > 300
            && pair[1].rtts.len() > 300
            && pair[0].serving_sat != pair[1].serving_sat
        {
            tested += 1;
            if mann_whitney_u(&pair[0].rtts, &pair[1].rtts)
                .map(|t| t.is_significant(0.05))
                .unwrap_or(false)
            {
                distinct += 1;
            }
        }
    }
    assert!(tested >= 1, "no testable window pairs");
    assert!(distinct >= tested - 1, "{distinct}/{tested} distinct");
}

#[test]
fn model_features_build_from_campaign_observations() {
    use starsense::core::model::build_dataset;

    let (constellation, terminals) = world();
    let campaign = Campaign::oracle(&constellation, terminals, CampaignConfig::default(), 99);
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 14, 0, 0.0);
    let obs = campaign.run(from, 80);

    let (fx, data) = build_dataset(&obs, 0);
    assert!(data.len() >= 70, "labeled rows {}", data.len());
    assert_eq!(data.width(), 1 + fx.vocabulary().len());
    // Count features must account for every available satellite.
    for o in obs.iter().filter(|o| o.terminal_id == 0).take(10) {
        let row = fx.features(o);
        let total: f64 = row[1..].iter().sum();
        assert_eq!(total as usize, o.available.len());
    }
}
