//! The published-TLE path: the catalog the "public" sees must be valid TLE
//! text end to end — parseable, checksummed, and propagatable — exactly
//! like a CelesTrak download.

use starsense::constellation::ConstellationBuilder;
use starsense::sgp4::{checksum, Sgp4, Tle};

#[test]
fn published_catalog_is_valid_celestrak_style_text() {
    let c = ConstellationBuilder::starlink_mini().seed(31).build();
    let text = c.published_catalog_text();

    // 3 lines per satellite (name + two element lines).
    assert_eq!(text.lines().count(), c.len() * 3);

    let parsed = Tle::parse_catalog(&text).expect("catalog re-parses");
    assert_eq!(parsed.len(), c.len());

    for (tle, sat) in parsed.iter().zip(c.sats()) {
        assert_eq!(tle.norad_id, sat.norad_id);
        assert_eq!(tle.name.as_deref(), Some(sat.name.as_str()));
        // Checksums are embedded correctly (parse_catalog verifies, but be
        // explicit about the wire property).
        let (l1, l2) = tle.format_lines();
        assert_eq!(l1.len(), 69);
        assert_eq!(l2.len(), 69);
        assert_eq!(checksum(&l1), l1.chars().last().and_then(|ch| ch.to_digit(10)).unwrap());
        assert_eq!(checksum(&l2), l2.chars().last().and_then(|ch| ch.to_digit(10)).unwrap());
    }
}

#[test]
fn every_published_tle_initializes_sgp4_and_propagates() {
    let c = ConstellationBuilder::starlink_mini().seed(31).build();
    let text = c.published_catalog_text();
    let parsed = Tle::parse_catalog(&text).unwrap();

    for tle in parsed {
        let sgp4 =
            Sgp4::new(&tle.elements()).unwrap_or_else(|e| panic!("sat {}: {e}", tle.norad_id));
        let state =
            sgp4.propagate_minutes(360.0).unwrap_or_else(|e| panic!("sat {}: {e}", tle.norad_id));
        let alt = state.position_km.norm() - 6378.135;
        assert!((400.0..700.0).contains(&alt), "sat {}: altitude {alt}", tle.norad_id);
    }
}

#[test]
fn published_positions_track_truth_within_kilometres() {
    let c = ConstellationBuilder::starlink_mini().seed(31).build();
    let at = starsense::astro::time::JulianDate::from_ymd_hms(2023, 6, 1, 6, 0, 0.0);
    let mut worst: f64 = 0.0;
    let mut n = 0;
    for sat in c.sats() {
        if let (Some(t), Some(p)) = (sat.true_position(at), sat.published_position(at)) {
            worst = worst.max(t.distance(p));
            n += 1;
        }
    }
    assert!(n > 300, "most satellites propagate");
    assert!(worst < 300.0, "worst published-vs-truth error {worst} km");
}
