//! Reproducibility: every stochastic component must be a pure function of
//! its seed, so figures regenerate identically run to run.

use starsense::netemu::groundstation::paper_pops;
use starsense::prelude::*;

#[test]
fn constellations_are_identical_across_builds() {
    let a = ConstellationBuilder::starlink_mini().seed(5).build();
    let b = ConstellationBuilder::starlink_mini().seed(5).build();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.sats().iter().zip(b.sats()) {
        assert_eq!(x.norad_id, y.norad_id);
        assert_eq!(x.elements, y.elements);
        assert_eq!(x.published.format_lines(), y.published.format_lines());
        assert_eq!(x.launch.date, y.launch.date);
    }
}

#[test]
fn campaigns_are_identical_across_runs() {
    let constellation = ConstellationBuilder::starlink_mini().seed(5).build();
    let run = || {
        let campaign =
            Campaign::oracle(&constellation, paper_terminals(), CampaignConfig::default(), 5);
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 8, 0, 0.0), 40)
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.slot, y.slot);
        assert_eq!(x.truth_id, y.truth_id);
        assert_eq!(x.available.len(), y.available.len());
        assert_eq!(x.local_hour, y.local_hour);
    }
}

#[test]
fn probe_traces_are_identical_across_runs() {
    let constellation = ConstellationBuilder::starlink_mini().seed(5).build();
    let run = || {
        let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), paper_terminals(), 5);
        let mut emulator =
            Emulator::new(&constellation, scheduler, paper_pops(), EmulatorConfig::default(), 5);
        emulator.probe_trace(0, JulianDate::from_ymd_hms(2023, 6, 1, 8, 0, 0.0), 8.0)
    };
    let a = run();
    let b = run();
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.rtt_ms, y.rtt_ms);
        assert_eq!(x.owd_up_ms, y.owd_up_ms);
        assert_eq!(x.serving_sat, y.serving_sat);
    }
}

#[test]
fn trained_models_are_identical_across_runs() {
    use starsense::forest::{Dataset, ForestParams, RandomForest};

    let rows: Vec<Vec<f64>> =
        (0..120).map(|i| vec![(i % 7) as f64, (i % 13) as f64, (i % 3) as f64]).collect();
    let labels: Vec<usize> = (0..120).map(|i| i % 4).collect();
    let data = Dataset::unnamed(rows, labels, 4);

    let a = RandomForest::fit(&data, &ForestParams::default(), 9);
    let b = RandomForest::fit(&data, &ForestParams::default(), 9);
    for i in 0..data.len() {
        assert_eq!(a.predict_proba(data.row(i).0), b.predict_proba(data.row(i).0));
    }
    assert_eq!(a.feature_importances(), b.feature_importances());
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = ConstellationBuilder::starlink_mini().seed(1).build();
    let b = ConstellationBuilder::starlink_mini().seed(2).build();
    let identical = a
        .sats()
        .iter()
        .zip(b.sats())
        .all(|(x, y)| x.published.mean_anomaly_deg == y.published.mean_anomaly_deg);
    assert!(!identical);
}
