//! Workspace lint gate: `cargo test -q` fails if `starlint` finds anything.
//!
//! This keeps the determinism (D-series), panic-safety (P-series) and
//! quality (Q-series) invariants documented in `DESIGN.md` §5 enforced on
//! every test run, not just when someone remembers to run the binary.

use std::path::Path;

use starsense_lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("starlint must be able to walk the workspace");
    assert!(
        report.findings.is_empty(),
        "starlint found {} violation(s); fix them or add a \
         `// starlint: allow(CODE, reason = \"...\")` directive:\n{}",
        report.findings.len(),
        report.to_text()
    );
}
