//! Chaos soak: the measurement pipeline under deterministic fault
//! injection must degrade gracefully, never abort.
//!
//! A seed sweep (≥8 seeds) runs identified-mode campaigns through
//! escalating fault tiers (≥3 non-zero rates plus the fault-free
//! control) and pins four properties:
//!
//! * zero panics — every run completes and keeps its slot count;
//! * slot times stay monotone under any fault mix;
//! * a fault-free [`FaultPlan`] is bit-identical to a fault-unaware
//!   configuration, in the campaign and in the probe emulator;
//! * aggregated degradation is monotone in the injected rate, and every
//!   slot lands in exactly one outcome bucket.

use starsense::core::degrade::DegradationStats;
use starsense::ident::DEFAULT_MIN_MARGIN;
use starsense::netemu::groundstation::paper_pops;
use starsense::netemu::LossCause;
use starsense::prelude::*;

const SEEDS: [u64; 8] = [11, 23, 37, 41, 59, 67, 83, 97];
const TIER_RATES: [f64; 4] = [0.0, 0.08, 0.2, 0.45];
const SLOTS: usize = 18;

fn mini() -> Constellation {
    ConstellationBuilder::starlink_mini().seed(7).build()
}

fn start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 8, 0, 0.0)
}

fn one_terminal() -> Vec<Terminal> {
    let mut t = paper_terminals();
    t.truncate(1);
    t
}

/// Decorrelate the fault-plan seed from the world seed so fault
/// placement does not track scheduler draws.
fn plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), FaultRates::uniform(rate))
}

fn chaos_config(seed: u64, rate: f64) -> CampaignConfig {
    CampaignConfig {
        faults: plan(seed, rate),
        min_margin: DEFAULT_MIN_MARGIN,
        quarantine_after: 3,
        ..CampaignConfig::default()
    }
}

#[test]
fn escalating_fault_tiers_degrade_monotonically_without_panicking() {
    let constellation = mini();
    let mut prev_no_data = 0usize;
    let mut baseline_observed = 0usize;
    for (tier, &rate) in TIER_RATES.iter().enumerate() {
        let mut agg = DegradationStats::default();
        for &seed in &SEEDS {
            let campaign = Campaign::identified(
                &constellation,
                one_terminal(),
                chaos_config(seed, rate),
                seed,
            );
            let (obs, stats) = campaign.run_with_stats(start(), SLOTS);

            // Zero panics: the run completed with its full slot count.
            assert_eq!(obs.len(), SLOTS, "campaign truncated at seed {seed} rate {rate}");
            // Slot times stay monotone no matter what was injected.
            for w in obs.windows(2) {
                assert_eq!(w[1].slot, w[0].slot + 1, "slot indices must stay consecutive");
                assert!(w[1].slot_start.0 > w[0].slot_start.0, "slot times must stay monotone");
            }
            // Every slot resolves to exactly one outcome bucket, and the
            // chosen pick exists exactly on Observed slots.
            for o in &obs {
                assert_eq!(o.chosen.is_some(), matches!(o.outcome, SlotOutcome::Observed { .. }));
            }
            agg.merge(&stats);
        }

        assert_eq!(agg.slots, SEEDS.len() * SLOTS);
        assert_eq!(
            agg.observed + agg.ambiguous + agg.no_data,
            agg.slots,
            "outcome buckets must partition the slots at rate {rate}"
        );
        if tier == 0 {
            baseline_observed = agg.observed;
            assert!(
                agg.observed_rate() > 0.5,
                "fault-free identified campaigns should mostly observe: {:.2}",
                agg.observed_rate()
            );
        }
        // Aggregated degradation is monotone in the tier rate.
        assert!(
            agg.no_data >= prev_no_data,
            "no-data slots not monotone at rate {rate}: {} < {prev_no_data}",
            agg.no_data
        );
        prev_no_data = agg.no_data;
        if tier == TIER_RATES.len() - 1 {
            assert!(agg.no_data > 0, "the top tier must actually cause data loss");
            assert!(
                agg.observed < baseline_observed,
                "the top tier must observe less than the fault-free control"
            );
        }
    }
}

#[test]
fn fault_free_plans_are_bit_identical_to_fault_unaware_runs() {
    let constellation = mini();
    for &seed in &[SEEDS[0], SEEDS[5]] {
        // A seeded all-zero plan plus non-default resilience knobs must
        // not perturb a single bit of the observation stream.
        let faultless = CampaignConfig {
            faults: plan(seed, 0.0),
            frame_retries: 9,
            quarantine_after: 5,
            ..CampaignConfig::default()
        };
        let a = Campaign::identified(&constellation, one_terminal(), faultless, seed)
            .run(start(), SLOTS);
        let b =
            Campaign::identified(&constellation, one_terminal(), CampaignConfig::default(), seed)
                .run(start(), SLOTS);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.slot_start.0.to_bits(), y.slot_start.0.to_bits());
            assert_eq!(x.truth_id, y.truth_id);
            assert_eq!(
                x.chosen.as_ref().map(|c| c.norad_id),
                y.chosen.as_ref().map(|c| c.norad_id)
            );
            assert_eq!(x.available.len(), y.available.len());
            assert_eq!(x.outcome, y.outcome);
        }
    }
}

/// Kill/resume tier: every seed's campaign is run through the resumable
/// engine and "killed" (in-process, after the checkpoint is durably on
/// disk — the same boundary a real `kill -9` resumes from) after every
/// `STARSENSE_CHAOS_KILL` checkpoints, then resumed from the snapshot
/// until done. The reassembled stream must be bit-for-bit identical to
/// the one-shot engine's, under fault injection, for every seed.
#[test]
fn kill_resume_chain_is_bit_identical_across_seeds() {
    let constellation = mini();
    let kill_every = std::env::var("STARSENSE_CHAOS_KILL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize)
        .max(1);
    let scratch = std::env::temp_dir().join(format!("starsense-chaos-kill-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    for &seed in &SEEDS {
        let campaign = Campaign::identified(
            &constellation,
            one_terminal(),
            chaos_config(seed, TIER_RATES[2]),
            seed,
        );
        let one_shot = fingerprint_observations(&campaign.run(start(), SLOTS));

        let opts = ResumeConfig {
            checkpoint_every: 4,
            stop_after_checkpoints: Some(kill_every),
            ..ResumeConfig::new(scratch.join(format!("seed-{seed}.ckpt")))
        };
        let mut lives = 0usize;
        let (resumed, last_report) = loop {
            lives += 1;
            assert!(lives <= SLOTS + 2, "kill/resume chain failed to converge at seed {seed}");
            let (obs, _, report) = campaign
                .run_resumable(start(), SLOTS, &opts)
                .expect("resumable campaign must never abort");
            if report.completed {
                break (fingerprint_observations(&obs), report);
            }
        };
        assert!(lives > 1, "the kill switch must actually interrupt at seed {seed}");
        assert!(last_report.resumed_at_slot.is_some(), "the final life must have resumed");
        assert_eq!(
            resumed, one_shot,
            "seed {seed}: kill/resume stream diverged from the one-shot engine"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn probe_bursts_escalate_losses_and_stay_attributed() {
    let constellation = mini();
    let probe = |seed: u64, rate: f64| {
        let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), one_terminal(), seed);
        let mut pops = paper_pops();
        pops.truncate(1);
        let config = EmulatorConfig { faults: plan(seed, rate), ..EmulatorConfig::default() };
        let mut emulator = Emulator::new(&constellation, scheduler, pops, config, seed);
        emulator.probe_trace(0, start(), 120.0)
    };

    // Fault-free plan: bit-identical to the default config.
    let zero = probe(SEEDS[0], 0.0);
    let plain = {
        let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), one_terminal(), SEEDS[0]);
        let mut pops = paper_pops();
        pops.truncate(1);
        let mut emulator =
            Emulator::new(&constellation, scheduler, pops, EmulatorConfig::default(), SEEDS[0]);
        emulator.probe_trace(0, start(), 120.0)
    };
    assert_eq!(zero.records.len(), plain.records.len());
    for (x, y) in zero.records.iter().zip(&plain.records) {
        assert_eq!(x.rtt_ms.map(f64::to_bits), y.rtt_ms.map(f64::to_bits));
        assert_eq!(x.loss, y.loss);
    }

    // Escalating tiers: loss attribution invariant holds everywhere and
    // aggregated burst losses are monotone in the rate.
    let mut prev_burst = 0usize;
    for &rate in &TIER_RATES {
        let mut burst = 0usize;
        for &seed in &SEEDS {
            let trace = probe(seed, rate);
            assert!(!trace.records.is_empty());
            for r in &trace.records {
                assert_eq!(
                    r.loss.is_some(),
                    r.rtt_ms.is_none(),
                    "loss-attribution invariant broken at seed {seed} rate {rate}"
                );
            }
            burst += trace.losses_by_cause(LossCause::FaultBurst);
        }
        assert!(
            burst >= prev_burst,
            "burst losses not monotone at rate {rate}: {burst} < {prev_burst}"
        );
        prev_burst = burst;
    }
    assert!(prev_burst > 0, "the top tier must inject marked probe losses");
}
