//! # starsense
//!
//! A full Rust reproduction of *"Making Sense of Constellations:
//! Methodologies for Understanding Starlink's Scheduling Algorithms"*
//! (CoNEXT Companion '23).
//!
//! The paper reverse-engineers Starlink's hierarchical traffic controllers
//! from the outside: a global scheduler that re-assigns satellites to user
//! terminals every 15 seconds, and an on-satellite MAC scheduler that
//! round-robins radio frames. Because the real study is gated on Starlink
//! hardware and the live constellation, this workspace rebuilds the whole
//! measurement environment as a deterministic simulation — and then runs
//! the paper's methodology against it:
//!
//! * [`astro`] — vectors, time scales, reference frames, solar ephemeris;
//! * [`sgp4`] — TLE parsing/formatting and the SGP4 propagator;
//! * [`constellation`] — synthetic Walker-delta Starlink shells with
//!   launch batches and stale published TLEs;
//! * [`scheduler`] — the *hidden* ground-truth global + MAC schedulers;
//! * [`netemu`] — bent-pipe RTT emulation with 20 ms probing (§3);
//! * [`obstruction`] — the dish's 123×123 obstruction-map raster (§4.1);
//! * [`dtw`] — dynamic time warping for trajectory matching (§4.1);
//! * [`ident`] — the XOR + DTW satellite-identification pipeline (§4);
//! * [`stats`] — Mann-Whitney U, ECDFs, Pearson correlation;
//! * [`forest`] — from-scratch random forests with CV and grid search (§6);
//! * [`faults`] — seeded deterministic fault injection (dropped frames,
//!   corrupt TLEs, propagation failures, probe bursts, worker panics) for
//!   chaos testing;
//! * [`checkpoint`] — the versioned, checksummed snapshot container and
//!   atomic persistence behind crash-resilient campaigns;
//! * [`core`] — campaigns, the §5 characterizations and the §6 model.
//!
//! # Quickstart
//!
//! ```no_run
//! use starsense::prelude::*;
//!
//! // A synthetic Starlink-like constellation and the hidden scheduler.
//! let constellation = ConstellationBuilder::starlink_gen1().seed(7).build();
//! let campaign = Campaign::oracle(
//!     &constellation,
//!     paper_terminals(),
//!     CampaignConfig::default(),
//!     7,
//! );
//!
//! // Re-derive Figure 4 (angle-of-elevation preference) from scratch.
//! let from = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
//! let observations = campaign.run(from, 240);
//! let fig4 = aoe_analysis(&observations, 0);
//! println!(
//!     "chosen median AOE {:.1}° vs available {:.1}°",
//!     fig4.chosen_median_deg, fig4.available_median_deg
//! );
//! ```
//!
//! Run `cargo run --release -p starsense-experiments --bin fig4` (and
//! `fig2`…`fig8`, `tab_*`) to regenerate every figure and table of the
//! paper; see `EXPERIMENTS.md` for the recorded results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use starsense_astro as astro;
pub use starsense_checkpoint as checkpoint;
pub use starsense_constellation as constellation;
pub use starsense_core as core;
pub use starsense_dtw as dtw;
pub use starsense_faults as faults;
pub use starsense_forest as forest;
pub use starsense_ident as ident;
pub use starsense_netemu as netemu;
pub use starsense_obstruction as obstruction;
pub use starsense_scheduler as scheduler;
pub use starsense_sgp4 as sgp4;
pub use starsense_stats as stats;

/// The most common imports, bundled.
pub mod prelude {
    pub use starsense_astro::frames::Geodetic;
    pub use starsense_astro::time::JulianDate;
    pub use starsense_constellation::{Constellation, ConstellationBuilder};
    pub use starsense_core::campaign::{Campaign, CampaignConfig, SlotObservation};
    pub use starsense_core::characterize::{
        aoe_analysis, azimuth_analysis, launch_analysis, sunlit_analysis,
    };
    pub use starsense_core::degrade::{DegradationStats, DegradeReason, SlotOutcome};
    pub use starsense_core::model::train_and_evaluate;
    pub use starsense_core::resume::{fingerprint_observations, ResumeConfig, ResumeReport};
    pub use starsense_core::vantage::paper_terminals;
    pub use starsense_faults::{FaultPlan, FaultRates};
    pub use starsense_ident::{identify_slot, run_validation, DishSimulator};
    pub use starsense_netemu::{Emulator, EmulatorConfig};
    pub use starsense_scheduler::{GlobalScheduler, MacScheduler, SchedulerPolicy, Terminal};
}
